// StrengthTracker: the strong commit rule's bookkeeping (Fig. 4/5) —
// endorser counting across modes, the strong 3-chain rule, ancestor pruning,
// idempotency, and the paper's Lemma-1 quorum-intersection arithmetic.
#include <gtest/gtest.h>

#include "sftbft/core/strength.hpp"

namespace sftbft::core {
namespace {

using types::Block;
using types::BlockId;
using types::QuorumCert;
using types::Vote;
using types::VoteMode;

constexpr std::uint32_t kN = 7;
constexpr std::uint32_t kF = 2;

Block child_of(const Block& parent, Round round) {
  Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.seal();
  return block;
}

Vote vote_for(const Block& block, ReplicaId voter, Round marker,
              VoteMode mode = VoteMode::Marker) {
  Vote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.voter = voter;
  vote.mode = mode;
  vote.marker = marker;
  if (mode == VoteMode::Intervals) {
    vote.endorsed = IntervalSet::single(marker + 1, block.round);
  }
  return vote;
}

QuorumCert qc_for(const Block& block, std::vector<Vote> votes) {
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = block.round;
  qc.parent_id = block.parent_id;
  qc.parent_round = block.qc.round;
  // Structural assembly (no signatures): the tracker consumes voter + meta
  // and never checks the aggregate, so the bitmap is set directly.
  for (const Vote& vote : votes) {
    qc.votes.push_back({vote.voter, vote.meta()});
    qc.agg.signers.set(vote.voter);
  }
  qc.canonicalize();
  return qc;
}

class EndorsementTest : public ::testing::Test {
 protected:
  chain::BlockTree tree_;
  Block genesis_ = tree_.genesis();

  const Block& add(const Block& parent, Round round) {
    const Block block = child_of(parent, round);
    tree_.insert(block);
    return *tree_.get(block.id);
  }

  /// QC for `block` voted by replicas [0, count) with the given marker.
  QuorumCert full_qc(const Block& block, std::uint32_t count,
                     Round marker = 0, VoteMode mode = VoteMode::Marker) {
    std::vector<Vote> votes;
    for (ReplicaId voter = 0; voter < count; ++voter) {
      votes.push_back(vote_for(block, voter, marker, mode));
    }
    return qc_for(block, std::move(votes));
  }
};

TEST_F(EndorsementTest, DirectVotesEndorse) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  tracker.process_qc(full_qc(b1, 5));
  EXPECT_EQ(tracker.endorser_count(b1.id), 5u);
}

TEST_F(EndorsementTest, IndirectVotesEndorseAncestors) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  tracker.process_qc(full_qc(b1, 5));
  tracker.process_qc(full_qc(b2, 7));  // markers 0: endorse b1 too
  EXPECT_EQ(tracker.endorser_count(b1.id), 7u);
  EXPECT_EQ(tracker.endorser_count(b2.id), 7u);
}

TEST_F(EndorsementTest, MarkerBlocksConflictedEndorsement) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  // Voter 6 voted on a conflicting round-2 fork: marker 2. Its vote for b3
  // endorses b3 (direct) and NOT b2 (round 2 = marker) and NOT b1 (1 < 2).
  std::vector<Vote> votes;
  for (ReplicaId voter = 0; voter < 6; ++voter) {
    votes.push_back(vote_for(b3, voter, 0));
  }
  votes.push_back(vote_for(b3, 6, /*marker=*/2));
  tracker.process_qc(qc_for(b3, std::move(votes)));

  EXPECT_EQ(tracker.endorser_count(b3.id), 7u);
  EXPECT_EQ(tracker.endorser_count(b2.id), 6u);
  EXPECT_EQ(tracker.endorser_count(b1.id), 6u);
}

TEST_F(EndorsementTest, IntervalVotesCanSkipMiddleRounds) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b3 = add(b1, 3);
  const Block& b5 = add(b3, 5);

  Vote vote = vote_for(b5, 0, 0, VoteMode::Intervals);
  vote.endorsed = IntervalSet::single(1, 5);
  vote.endorsed.subtract(3, 3);  // fork covered exactly round 3
  tracker.process_qc(qc_for(b5, {vote}));

  EXPECT_EQ(tracker.endorser_count(b5.id), 1u);
  EXPECT_EQ(tracker.endorser_count(b3.id), 0u);  // hole
  EXPECT_EQ(tracker.endorser_count(b1.id), 1u);  // below the hole: endorsed
}

TEST_F(EndorsementTest, StrongThreeChainRule) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  const Block& b4 = add(b3, 4);

  tracker.process_qc(full_qc(b1, 5));
  tracker.process_qc(full_qc(b2, 5));
  auto updates = tracker.process_qc(full_qc(b3, 5));
  // b1 now heads a 3-chain (1,2,3) with 5 endorsers each: x = 5-f-1 = 2 = f.
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].block_id, b1.id);
  EXPECT_EQ(updates[0].strength, kF);

  // The QC for b4 (all 7 voters, marker 0) endorses b1..b3 with 7 each:
  // x = 7 - 3 = 4 = 2f for head b1, and f+... for head b2 (chain 2,3,4).
  updates = tracker.process_qc(full_qc(b4, 7));
  std::uint32_t b1_strength = 0;
  for (const auto& update : updates) {
    if (update.block_id == b1.id) b1_strength = update.strength;
  }
  EXPECT_EQ(b1_strength, 2 * kF);
  EXPECT_EQ(tracker.head_strength(b1.id), 2 * kF);
}

TEST_F(EndorsementTest, StrengthNeedsAllThreeBlocks) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  // b2 only gets 5 endorsers; b1 and b3 get 7. min = 5 -> x = f only.
  tracker.process_qc(full_qc(b1, 7));
  std::vector<Vote> b2_votes;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    b2_votes.push_back(vote_for(b2, voter, 0));
  }
  // Voters 5,6 of b3 conflicted at round 2: they endorse b1 but not b2.
  tracker.process_qc(qc_for(b2, std::move(b2_votes)));
  std::vector<Vote> b3_votes;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    b3_votes.push_back(vote_for(b3, voter, 0));
  }
  b3_votes.push_back(vote_for(b3, 5, 2));
  b3_votes.push_back(vote_for(b3, 6, 2));
  tracker.process_qc(qc_for(b3, std::move(b3_votes)));

  EXPECT_EQ(tracker.endorser_count(b1.id), 7u);
  EXPECT_EQ(tracker.endorser_count(b2.id), 5u);
  EXPECT_EQ(tracker.endorser_count(b3.id), 7u);
  EXPECT_EQ(tracker.head_strength(b1.id), kF);  // min(7,5,7) - f - 1 = 2
}

TEST_F(EndorsementTest, NonConsecutiveRoundsNeverCommit) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b4 = add(b2, 4);  // gap: 2 -> 4
  tracker.process_qc(full_qc(b1, 7));
  tracker.process_qc(full_qc(b2, 7));
  tracker.process_qc(full_qc(b4, 7));
  EXPECT_EQ(tracker.head_strength(b1.id), 0u);
}

TEST_F(EndorsementTest, ProcessQcIsIdempotent) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const QuorumCert qc = full_qc(b1, 5);
  EXPECT_TRUE(tracker.process_qc(qc).empty());
  EXPECT_TRUE(tracker.process_qc(qc).empty());  // duplicate: no-op
  EXPECT_EQ(tracker.endorser_count(b1.id), 5u);
}

TEST_F(EndorsementTest, DifferentQcsForSameBlockUnion) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  std::vector<Vote> first, second;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    first.push_back(vote_for(b1, voter, 0));
  }
  for (ReplicaId voter = 2; voter < 7; ++voter) {
    second.push_back(vote_for(b1, voter, 0));
  }
  tracker.process_qc(qc_for(b1, std::move(first)));
  tracker.process_qc(qc_for(b1, std::move(second)));
  EXPECT_EQ(tracker.endorser_count(b1.id), 7u);  // union of voter sets
}

TEST_F(EndorsementTest, ExtraVoteIngestion) {
  // FBFT baseline: direct-only counting via process_extra_vote.
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  tracker.process_qc(full_qc(b2, 5, 0, VoteMode::Plain));
  EXPECT_EQ(tracker.endorser_count(b1.id), 0u);  // plain: no indirect power
  tracker.process_extra_vote(vote_for(b1, 6, 0, VoteMode::Plain));
  EXPECT_EQ(tracker.endorser_count(b1.id), 1u);
  // Duplicate extra vote is a no-op.
  tracker.process_extra_vote(vote_for(b1, 6, 0, VoteMode::Plain));
  EXPECT_EQ(tracker.endorser_count(b1.id), 1u);
}

TEST_F(EndorsementTest, EffectiveStrengthSeesDescendantHeads) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  const Block& b4 = add(b3, 4);
  tracker.process_qc(full_qc(b1, 7));
  tracker.process_qc(full_qc(b2, 7));
  tracker.process_qc(full_qc(b3, 7));
  tracker.process_qc(full_qc(b4, 7));
  // Head b1 (and by the second QC wave, b2) carry strength; b1's ancestors
  // would inherit through commit_chain. effective_strength lets Sec. 5
  // validation ask "what does anything above me prove?".
  EXPECT_GE(tracker.effective_strength(b1.id), tracker.head_strength(b1.id));
  EXPECT_GE(tracker.effective_strength(b1.id), kF);
}

// Lemma 1 arithmetic: |C(B')| + E > n forces Byzantine overlap. With E
// endorsers and a conflicting certified block, the intersection is at least
// E - f replicas that must be Byzantine — so under t <= E - f - 1 faults no
// conflicting same-round block can be certified. We verify the counting side:
// honest (marker-truthful) voters of a conflicting block never appear in the
// endorser set.
TEST_F(EndorsementTest, Lemma1HonestConflictVotersNeverEndorse) {
  StrengthTracker tracker(tree_, kN, kF);
  const Block& b1 = add(genesis_, 1);
  const Block& main2 = add(b1, 2);
  const Block& fork2 = add(b1, 3);  // conflicting branch
  const Block& main4 = add(main2, 4);

  // Voters 0..4 vote main2; voters 3..6 voted fork2 (overlap 3,4 is fine —
  // different rounds). Then voters 3..6 vote main4 with truthful marker 3.
  tracker.process_qc(full_qc(main2, 5));
  std::vector<Vote> fork_votes;
  for (ReplicaId voter = 3; voter < 7; ++voter) {
    fork_votes.push_back(vote_for(fork2, voter, 2));
  }
  tracker.process_qc(qc_for(fork2, std::move(fork_votes)));
  std::vector<Vote> main4_votes;
  for (ReplicaId voter = 3; voter < 7; ++voter) {
    main4_votes.push_back(vote_for(main4, voter, /*marker=*/3));
  }
  tracker.process_qc(qc_for(main4, std::move(main4_votes)));

  // Voters 3..6's main4 votes endorse main4 (direct) but neither main2
  // (round 2 < marker 3) nor b1 (round 1 < 3).
  EXPECT_EQ(tracker.endorser_count(main4.id), 4u);
  EXPECT_EQ(tracker.endorser_count(main2.id), 5u);  // unchanged
  const auto endorsers = tracker.endorsers(main2.id);
  for (ReplicaId voter : endorsers) EXPECT_LT(voter, 5u);
}

}  // namespace
}  // namespace sftbft::core
