// The unified engine layer: one Scenario + FaultSpec list must run
// unmodified on both chained-BFT backends (the paper's genericity claim,
// Secs. 3.2-3.4 + Appendix D), and the Deployment must enforce its
// config invariants.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/scenario.hpp"

namespace sftbft {
namespace {

using engine::Deployment;
using engine::DeploymentConfig;
using engine::FaultSpec;
using engine::Protocol;

/// One 4-replica crash-fault scenario, shared verbatim by both engines:
/// replica 3 crashes at t = 2s, the rest keep committing.
harness::Scenario crash_scenario(Protocol protocol) {
  harness::Scenario s;
  s.name = "cross-protocol-smoke";
  s.protocol = protocol;
  s.n = 4;
  s.mode = consensus::CoreMode::SftMarker;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(10);
  s.intra = millis(10);
  s.jitter = millis(2);
  s.jitter_frac = 0;
  s.leader_processing = millis(5);
  s.base_timeout = millis(500);
  s.streamlet_delta_bound = millis(30);
  s.max_batch = 10;
  s.verify_signatures = true;
  s.duration = seconds(10);
  s.warmup = seconds(1);
  s.tail = seconds(2);
  s.seed = 17;
  s.faults.resize(4);
  s.faults[3] = FaultSpec::crash_at_time(seconds(2));
  return s;
}

TEST(Engine, SameCrashScenarioRunsOnBothProtocols) {
  for (const Protocol protocol : engine::kAllProtocols) {
    const harness::ScenarioResult result =
        run_scenario(crash_scenario(protocol));
    EXPECT_GT(result.summary.committed_blocks, 10u)
        << engine::protocol_name(protocol);
    EXPECT_GT(result.total_messages, 0u);
    // The regular (x = f) level must be reached by essentially every
    // block-replica pair despite the crash (f = 1 tolerates it).
    ASSERT_FALSE(result.latency.empty());
    EXPECT_GT(result.latency.front().coverage, 0.7)
        << engine::protocol_name(protocol);
  }
}

TEST(Engine, CrossProtocolAgreementUnderSharedFaults) {
  // Drive the Deployment directly: both engines, same config shape, same
  // FaultSpec list; every surviving replica must agree on the committed
  // prefix within each deployment.
  for (const Protocol protocol : engine::kAllProtocols) {
    const harness::Scenario s = crash_scenario(protocol);
    Deployment deployment(s.to_deployment_config());
    deployment.start();
    deployment.run_for(s.duration);

    const auto& ledger0 = deployment.ledger(0);
    ASSERT_GT(ledger0.committed_blocks(), 10u)
        << engine::protocol_name(protocol);
    for (ReplicaId id = 1; id < 3; ++id) {  // replica 3 crashed
      const auto& ledger = deployment.ledger(id);
      const Height common =
          std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
      ASSERT_GT(common, 0u);
      for (Height h = 1; h <= common; ++h) {
        ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
            << engine::protocol_name(protocol) << " height " << h
            << " replica " << id;
      }
    }
  }
}

TEST(Engine, SilentFaultSuppressesAllTrafficOnBothProtocols) {
  for (const Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = crash_scenario(protocol);
    s.n = 7;
    s.faults.assign(7, FaultSpec::honest());
    s.faults[2] = FaultSpec::silent();
    Deployment deployment(s.to_deployment_config());
    deployment.start();
    deployment.run_for(seconds(8));
    EXPECT_GT(deployment.ledger(0).committed_blocks(), 5u)
        << engine::protocol_name(protocol);
    // Silent replicas stay synced (they receive) but never send: their
    // inbound counters grow while honest peers' ledgers keep growing.
    EXPECT_GT(deployment.engine(2).inbound_messages(), 0u);
    EXPECT_EQ(deployment.engine(2).fault().kind, FaultSpec::Kind::Silent);
    EXPECT_EQ(deployment.honest_count(), 6u);
  }
}

TEST(Engine, CorruptLinksDropFramesPreGstThenRecoverOnBothProtocols) {
  // FaultSpec::Corrupt end to end: replica 1's outbound links flip bits
  // until GST. Receivers reject the frames at the Envelope CRC (counted,
  // never crashing), and once GST passes the cluster commits normally —
  // byte-level loss is a pre-GST network fault, not a safety hazard.
  for (const Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = crash_scenario(protocol);
    s.faults.clear();
    s.gst = seconds(2);
    s.faults.resize(4);
    s.faults[1] = FaultSpec::corrupt_links({.rate = 1.0, .max_flips = 3,
                                            .peers = {}});
    const harness::ScenarioResult result = run_scenario(s);
    EXPECT_GT(result.corrupt_injected, 0u) << engine::protocol_name(protocol);
    EXPECT_GT(result.corrupt_drops, 0u) << engine::protocol_name(protocol);
    EXPECT_GT(result.summary.committed_blocks, 10u)
        << engine::protocol_name(protocol);
  }
}

TEST(Engine, CorruptSpecValidationRejectsNonsense) {
  harness::Scenario s = crash_scenario(Protocol::DiemBft);
  s.gst = seconds(1);
  s.faults.assign(4, FaultSpec::honest());
  s.faults[1] = FaultSpec::corrupt_links({.rate = 1.5, .max_flips = 1,
                                          .peers = {}});
  EXPECT_THROW(Deployment deployment(s.to_deployment_config()),
               std::invalid_argument);
  s.faults[1] = FaultSpec::corrupt_links({.rate = 1.0, .max_flips = 0,
                                          .peers = {}});
  EXPECT_THROW(Deployment deployment(s.to_deployment_config()),
               std::invalid_argument);
  s.faults[1] = FaultSpec::corrupt_links({.rate = 1.0, .max_flips = 2,
                                          .peers = {9}});
  EXPECT_THROW(Deployment deployment(s.to_deployment_config()),
               std::invalid_argument);
  s.faults[1] = FaultSpec::corrupt_links({.rate = 1.0, .max_flips = 2,
                                          .peers = {1}});
  EXPECT_THROW(Deployment deployment(s.to_deployment_config()),
               std::invalid_argument);
  // Corruption only acts pre-GST, so gst == 0 would make the fault a
  // silent no-op — the Deployment rejects the combination.
  s.faults[1] = FaultSpec::corrupt_links({.rate = 0.5, .max_flips = 2,
                                          .peers = {0, 2}});
  s.gst = 0;
  EXPECT_THROW(Deployment deployment(s.to_deployment_config()),
               std::invalid_argument);
  // A well-formed spec passes, and the corrupt replica still counts as
  // honest for liveness (the fault is in its links, not its behaviour).
  s.gst = seconds(1);
  Deployment deployment(s.to_deployment_config());
  EXPECT_EQ(deployment.honest_count(), 4u);
}

TEST(Engine, EnginesReportProtocolAndInboundBandwidth) {
  harness::Scenario s = crash_scenario(Protocol::Streamlet);
  s.faults.clear();
  Deployment deployment(s.to_deployment_config());
  deployment.start();
  deployment.run_for(seconds(3));
  const engine::ConsensusEngine& e = deployment.engine(0);
  EXPECT_EQ(e.protocol(), Protocol::Streamlet);
  EXPECT_EQ(e.id(), 0u);
  EXPECT_GT(e.current_round(), 0u);
  EXPECT_GT(e.inbound_bytes(), 0u);
  EXPECT_GE(e.inbound_bytes(), e.inbound_messages());  // every msg >= 1 byte
}

TEST(Engine, FbftBaselineRejectedOffDiemBft) {
  // The Appendix-B FBFT baseline is DiemBFT-specific; asking for it on any
  // other engine must fail loudly rather than silently run SFT.
  for (const Protocol protocol : {Protocol::Streamlet, Protocol::HotStuff}) {
    harness::Scenario s = crash_scenario(protocol);
    s.fbft = true;
    EXPECT_THROW(s.to_deployment_config(), std::invalid_argument)
        << engine::protocol_name(protocol);
  }
}

TEST(Engine, ChainedAccessorsServeBothChainedProtocols) {
  for (const Protocol protocol : {Protocol::DiemBft, Protocol::HotStuff}) {
    harness::Scenario s = crash_scenario(protocol);
    s.faults.clear();
    Deployment deployment(s.to_deployment_config());
    EXPECT_NO_THROW(deployment.chained_core(0));
    EXPECT_STREQ(deployment.chained_core(0).config().rules.name,
                 engine::protocol_name(protocol));
    EXPECT_THROW(deployment.streamlet_core(0), std::logic_error);
  }
  harness::Scenario s = crash_scenario(Protocol::Streamlet);
  s.faults.clear();
  Deployment deployment(s.to_deployment_config());
  EXPECT_THROW(deployment.chained_core(0), std::logic_error);
}

TEST(Deployment, RejectsTopologySizeMismatch) {
  DeploymentConfig config;
  config.n = 7;  // default topology is uniform(4): silently wrong before
  EXPECT_THROW(Deployment deployment(std::move(config)),
               std::invalid_argument);
}

TEST(Deployment, TypedAccessorsRejectWrongProtocol) {
  DeploymentConfig config;  // DiemBFT, n = 4 with matching default topology
  Deployment deployment(std::move(config));
  EXPECT_NO_THROW(deployment.diem_core(0));
  EXPECT_THROW(deployment.streamlet_core(0), std::logic_error);
}

}  // namespace
}  // namespace sftbft
