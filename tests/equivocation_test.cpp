// Equivocating-leader scenario across two honest cores (the network-level
// companion to the Appendix-C endorsement test): a Byzantine round-2 leader
// shows different round-2 blocks to different honest replicas. Safety must
// hold, and the fork-side replica's later strong-votes must carry the
// truthful marker that denies endorsement to the branch it conflicted with.
#include <gtest/gtest.h>

#include "sftbft/consensus/diembft.hpp"

namespace sftbft::consensus {
namespace {

using types::Block;
using types::Proposal;
using types::QuorumCert;
using types::Vote;
using types::VoteMode;

constexpr std::uint32_t kN = 4;

struct CoreUnderTest {
  std::vector<std::pair<ReplicaId, Vote>> votes;
  std::unique_ptr<DiemBftCore> core;

  CoreUnderTest(ReplicaId id, sim::Scheduler& sched,
                std::shared_ptr<crypto::KeyRegistry> registry,
                mempool::Mempool& pool) {
    CoreConfig config;
    config.id = id;
    config.n = kN;
    config.mode = CoreMode::SftMarker;
    config.base_timeout = seconds(100);  // timers out of the way
    config.max_batch = 1;
    DiemBftCore::Hooks hooks;
    hooks.send_vote = [this](ReplicaId to, const Vote& vote) {
      votes.emplace_back(to, vote);
    };
    hooks.broadcast_proposal = [](const Proposal&) {};
    hooks.broadcast_timeout = [](const types::TimeoutMsg&) {};
    core = std::make_unique<DiemBftCore>(config, sched, std::move(registry),
                                         pool, std::move(hooks));
    core->start();
  }
};

class EquivocationTest : public ::testing::Test {
 protected:
  EquivocationTest()
      : registry_(std::make_shared<crypto::KeyRegistry>(kN, 8)),
        honest_a_(0, sched_, registry_, pool_a_),
        honest_b_(3, sched_, registry_, pool_b_) {}

  Proposal make_proposal(const Block& parent, Round round,
                         const QuorumCert& qc, std::uint64_t salt = 0) {
    Block block;
    block.parent_id = parent.id;
    block.round = round;
    block.height = parent.height + 1;
    block.proposer = static_cast<ReplicaId>(round % kN);
    block.qc = qc;
    block.created_at = static_cast<SimTime>(salt);  // differentiates forks
    block.seal();
    Proposal proposal;
    proposal.block = block;
    proposal.sig =
        registry_->signer_for(block.proposer).sign(proposal.signing_bytes());
    return proposal;
  }

  QuorumCert qc_for(const Block& block,
                    const std::vector<std::pair<ReplicaId, Round>>& voters) {
    QuorumCert qc;
    qc.block_id = block.id;
    qc.round = block.round;
    qc.parent_id = block.parent_id;
    qc.parent_round = block.qc.round;
    for (const auto& [voter, marker] : voters) {
      Vote vote;
      vote.block_id = block.id;
      vote.round = block.round;
      vote.voter = voter;
      vote.mode = VoteMode::Marker;
      vote.marker = marker;
      vote.sig = registry_->signer_for(voter).sign(vote.signing_bytes());
      qc.votes.push_back(vote);
    }
    qc.canonicalize();
    return qc;
  }

  QuorumCert genesis_qc(const DiemBftCore& core) {
    QuorumCert qc;
    qc.block_id = core.tree().genesis_id();
    return qc;
  }

  sim::Scheduler sched_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  mempool::Mempool pool_a_, pool_b_;
  CoreUnderTest honest_a_;  // replica 0
  CoreUnderTest honest_b_;  // replica 3
};

TEST_F(EquivocationTest, ForkSideVotesCarryTruthfulMarkers) {
  // Round 1 (honest leader 1): both honest replicas see the same block.
  const Proposal p1 =
      make_proposal(honest_a_.core->tree().genesis(), 1,
                    genesis_qc(*honest_a_.core));
  honest_a_.core->on_proposal(p1);
  honest_b_.core->on_proposal(p1);
  ASSERT_EQ(honest_a_.votes.size(), 1u);
  ASSERT_EQ(honest_b_.votes.size(), 1u);

  // Round 2: the Byzantine leader (2 = 2 % 4) equivocates. Replica 0 sees
  // fork X, replica 3 sees fork Y — both extending p1.
  const QuorumCert qc1 = qc_for(
      p1.block, {{0, 0}, {2, 0}, {3, 0}});  // 2f+1 = 3 round-1 votes
  const Proposal fork_x = make_proposal(p1.block, 2, qc1, /*salt=*/100);
  const Proposal fork_y = make_proposal(p1.block, 2, qc1, /*salt=*/200);
  ASSERT_NE(fork_x.block.id, fork_y.block.id);
  honest_a_.core->on_proposal(fork_x);
  honest_b_.core->on_proposal(fork_y);
  // The equivocation is eventually visible to everyone (the next proposal
  // chains to fork X): deliver the other branch too. Neither replica votes
  // twice in round 2, but both now hold both blocks.
  honest_b_.core->on_proposal(fork_x);
  honest_a_.core->on_proposal(fork_y);
  ASSERT_EQ(honest_a_.votes.size(), 2u);  // each voted its own fork view
  ASSERT_EQ(honest_b_.votes.size(), 2u);
  EXPECT_EQ(honest_a_.votes[1].second.block_id, fork_x.block.id);
  EXPECT_EQ(honest_b_.votes[1].second.block_id, fork_y.block.id);

  // Round 3 (honest leader 3 — but we script delivery): fork X got
  // certified (votes of 0, 2-Byzantine, plus a scripted 4th view); the
  // round-3 block extends fork X and reaches BOTH replicas.
  const QuorumCert qc_x =
      qc_for(fork_x.block, {{0, 0}, {1, 0}, {2, 0}});
  const Proposal p3 = make_proposal(fork_x.block, 3, qc_x);
  honest_a_.core->on_proposal(p3);
  honest_b_.core->on_proposal(p3);

  // Replica 0 (clean history) endorses everything: marker 0.
  ASSERT_EQ(honest_a_.votes.size(), 3u);
  EXPECT_EQ(honest_a_.votes[2].second.marker, 0u);

  // Replica 3 voted the conflicting fork Y at round 2: its strong-vote for
  // p3 MUST carry marker 2 — it endorses p3 but not fork X (round 2).
  ASSERT_EQ(honest_b_.votes.size(), 3u);
  const Vote& b_vote = honest_b_.votes[2].second;
  EXPECT_EQ(b_vote.block_id, p3.block.id);
  EXPECT_EQ(b_vote.marker, 2u);
  EXPECT_TRUE(b_vote.endorses_round(3));
  EXPECT_FALSE(b_vote.endorses_round(2));
  EXPECT_FALSE(b_vote.endorses_round(1));
}

TEST_F(EquivocationTest, NoConflictingCommitsAcrossViews) {
  // Extend both forks far enough to commit on fork X; replica 3 (which saw
  // fork Y at round 2) must converge to the same committed chain.
  const Proposal p1 = make_proposal(honest_a_.core->tree().genesis(), 1,
                                    genesis_qc(*honest_a_.core));
  honest_a_.core->on_proposal(p1);
  honest_b_.core->on_proposal(p1);
  const QuorumCert qc1 = qc_for(p1.block, {{0, 0}, {2, 0}, {3, 0}});
  const Proposal fork_x = make_proposal(p1.block, 2, qc1, 100);
  const Proposal fork_y = make_proposal(p1.block, 2, qc1, 200);
  honest_a_.core->on_proposal(fork_x);
  honest_b_.core->on_proposal(fork_y);
  honest_b_.core->on_proposal(fork_x);  // equivocation revealed to B

  // Chain rounds 3..5 on fork X, delivered to both replicas.
  const Block* parent = &fork_x.block;
  QuorumCert qc_parent = qc_for(fork_x.block, {{0, 0}, {1, 0}, {2, 0}});
  std::vector<Proposal> chain;
  for (Round round = 3; round <= 5; ++round) {
    chain.push_back(make_proposal(*parent, round, qc_parent));
    parent = &chain.back().block;
    // Replica 3's real vote would carry marker 2; the QC uses replicas
    // 0,1,2 (marker 0) — a quorum that never conflicted.
    qc_parent = qc_for(*parent, {{0, 0}, {1, 0}, {2, 0}});
  }
  for (const Proposal& proposal : chain) {
    honest_a_.core->on_proposal(proposal);
    honest_b_.core->on_proposal(proposal);
  }

  // The 3-chain (2,3,4) commits fork X's round-2 block on both replicas —
  // identical ledgers despite the equivocation, and fork Y is abandoned.
  const auto& ledger_a = honest_a_.core->ledger();
  const auto& ledger_b = honest_b_.core->ledger();
  ASSERT_TRUE(ledger_a.is_committed(2));
  ASSERT_TRUE(ledger_b.is_committed(2));
  EXPECT_EQ(ledger_a.at(2).block_id, fork_x.block.id);
  EXPECT_EQ(ledger_b.at(2).block_id, fork_x.block.id);
  for (Height h = 1; h <= 2; ++h) {
    EXPECT_EQ(ledger_a.at(h).block_id, ledger_b.at(h).block_id);
  }
}

}  // namespace
}  // namespace sftbft::consensus
