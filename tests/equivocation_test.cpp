// Equivocating-leader scenario, driven through the adversary subsystem (the
// engine-level port of the old hand-scripted vote schedule; the original
// type-layer Appendix-C script survives as naive_counter_test.cpp, the
// regression guard for the counting rules themselves).
//
// A Byzantine leader (adversary::Strategy::EquivocatingLeader) shows
// conflicting same-round blocks to disjoint honest subsets via the real
// DiemBFT engine stack. Safety must hold, and the fork-side replicas'
// voting history must truthfully deny endorsement to the branch they
// conflicted with — the exact property the old scripted test pinned.
#include <gtest/gtest.h>

#include "sftbft/adversary/coalition.hpp"
#include "sftbft/engine/deployment.hpp"

namespace sftbft {
namespace {

using adversary::Strategy;
using engine::Deployment;
using engine::DeploymentConfig;
using engine::FaultSpec;

class EquivocationTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;
  static constexpr ReplicaId kByzantine = 2;

  void SetUp() override {
    DeploymentConfig config;
    config.n = kN;
    config.chained.mode = consensus::CoreMode::SftMarker;
    config.chained.base_timeout = millis(400);
    config.chained.leader_processing = millis(5);
    config.chained.max_batch = 4;
    config.topology = net::Topology::uniform(kN, millis(10));
    config.net.jitter = millis(2);
    config.seed = 8;
    config.faults.resize(kN, FaultSpec::honest());
    config.faults[kByzantine] =
        FaultSpec::byzantine({Strategy::EquivocatingLeader});
    cluster_ = std::make_unique<Deployment>(std::move(config));
    cluster_->start();
    cluster_->run_for(seconds(10));
  }

  std::unique_ptr<Deployment> cluster_;
};

TEST_F(EquivocationTest, ForkSideVotesCarryTruthfulMarkers) {
  const adversary::Coalition* coalition = cluster_->coalition();
  ASSERT_NE(coalition, nullptr);
  ASSERT_GT(coalition->stats().equivocations, 0u) << "the attack never ran";
  ASSERT_FALSE(coalition->forks().empty());

  // At least one honest replica voted the losing fork of some equivocation:
  // its VoteHistory frontier keeps that block forever (nothing extends it),
  // and every later strong-vote's marker must deny the conflicting rounds.
  bool fork_side_found = false;
  for (ReplicaId id = 0; id < kN; ++id) {
    if (id == kByzantine) continue;
    const auto& core = cluster_->diem_core(id);
    const auto& frontier = core.vote_history().frontier();
    if (frontier.size() < 2) continue;  // never voted across forks
    fork_side_found = true;

    const auto tip_height = core.ledger().tip();
    ASSERT_TRUE(tip_height.has_value());
    const types::Block* tip =
        core.tree().get(core.ledger().at(*tip_height).block_id);
    ASSERT_NE(tip, nullptr);

    // The newest frontier entry is on the live chain; every older one is a
    // fork remnant whose round the truthful marker must cover.
    Round fork_round = 0;
    for (const auto& entry : frontier) {
      if (core.tree().conflicts(entry.block_id, tip->id)) {
        fork_round = std::max(fork_round, entry.round);
      }
    }
    ASSERT_GT(fork_round, 0u) << "frontier held no conflicting fork entry";
    EXPECT_GE(core.vote_history().marker_for(*tip), fork_round)
        << "replica " << id << " under-reports its conflicting history";
  }
  EXPECT_TRUE(fork_side_found)
      << "no honest replica ever voted a losing fork — attack ineffective";
}

TEST_F(EquivocationTest, NoConflictingCommitsAcrossViews) {
  // Despite every staged fork, all honest ledgers agree on the common
  // prefix and the cluster kept committing.
  const auto& ledger0 = cluster_->ledger(0);
  ASSERT_GT(ledger0.tip().value_or(0), 0u);
  for (ReplicaId id = 1; id < kN; ++id) {
    if (id == kByzantine) continue;
    const auto& ledger = cluster_->ledger(id);
    const Height common =
        std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
    for (Height h = 1; h <= common; ++h) {
      ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
          << "conflicting commit at height " << h << " on replica " << id;
    }
  }
}

}  // namespace
}  // namespace sftbft
