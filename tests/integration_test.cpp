// End-to-end integration tests: full clusters on the simulated network.
//
// These exercise the whole stack — pacemaker, proposing, voting, QC
// formation, 3-chain commits, SFT endorsement tracking — under honest and
// faulty schedules, and check the paper's headline guarantees at small n.
#include <gtest/gtest.h>

#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/metrics.hpp"

namespace sftbft {
namespace {

using consensus::CoreMode;
using engine::Deployment;
using engine::DeploymentConfig;
using engine::FaultSpec;

DeploymentConfig small_cluster(std::uint32_t n, CoreMode mode,
                               std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.n = n;
  config.chained.mode = mode;
  config.chained.base_timeout = millis(500);
  config.chained.leader_processing = millis(5);
  config.chained.max_batch = 10;
  config.topology = net::Topology::uniform(n, millis(10));
  config.net.jitter = millis(2);
  config.workload.target_pool_size = 100;
  config.seed = seed;
  return config;
}

TEST(Integration, FourReplicasCommitBlocks) {
  Deployment cluster(small_cluster(4, CoreMode::SftMarker));
  cluster.start();
  cluster.run_for(seconds(10));

  for (ReplicaId id = 0; id < 4; ++id) {
    const auto& ledger = cluster.ledger(id);
    EXPECT_GT(ledger.committed_blocks(), 20u) << "replica " << id;
    EXPECT_GT(ledger.committed_txns(), 0u);
  }
}

TEST(Integration, AllReplicasAgreeOnCommittedPrefix) {
  Deployment cluster(small_cluster(4, CoreMode::SftMarker));
  cluster.start();
  cluster.run_for(seconds(10));

  const auto& ledger0 = cluster.ledger(0);
  for (ReplicaId id = 1; id < 4; ++id) {
    const auto& ledger = cluster.ledger(id);
    const Height common =
        std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
    ASSERT_GT(common, 0u);
    for (Height h = 1; h <= common; ++h) {
      ASSERT_TRUE(ledger0.is_committed(h));
      ASSERT_TRUE(ledger.is_committed(h));
      EXPECT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
          << "height " << h << " replica " << id;
    }
  }
}

TEST(Integration, PlainModeMatchesDiemBftCommits) {
  Deployment cluster(small_cluster(4, CoreMode::Plain));
  cluster.start();
  cluster.run_for(seconds(10));
  const auto& ledger = cluster.ledger(0);
  EXPECT_GT(ledger.committed_blocks(), 20u);
  // Plain DiemBFT commits are exactly f-strong.
  for (const auto& entry : ledger.snapshot()) {
    EXPECT_EQ(entry.strength, 1u);  // f = 1 at n = 4
  }
}

TEST(Integration, StrengthRatchetsUpToTwoF) {
  Deployment cluster(small_cluster(4, CoreMode::SftMarker));
  cluster.start();
  cluster.run_for(seconds(10));
  const auto& ledger = cluster.ledger(0);
  // With no faults every replica endorses every block within n rounds, so
  // old-enough blocks reach 2f-strong (Theorem 2 with c = 0).
  const auto snapshot = ledger.snapshot();
  ASSERT_GT(snapshot.size(), 10u);
  EXPECT_EQ(snapshot[2].strength, 2u);  // 2f = 2 at n = 4
}

TEST(Integration, SevenReplicasIntervalMode) {
  Deployment cluster(small_cluster(7, CoreMode::SftIntervals));
  cluster.start();
  cluster.run_for(seconds(10));
  const auto& ledger = cluster.ledger(0);
  EXPECT_GT(ledger.committed_blocks(), 20u);
  EXPECT_EQ(ledger.snapshot()[2].strength, 4u);  // 2f = 4 at n = 7
}

TEST(Integration, SurvivesLeaderCrashes) {
  auto config = small_cluster(7, CoreMode::SftMarker);
  // Crash two replicas (f = 2) early. Placement note: with pure round-robin
  // rotation a certified round needs both its leader and its vote collector
  // (the next leader) alive, so commits need runs of >= 4 alive rotation
  // positions; adjacent crash ids keep such runs at n = 7. (Scattered faults
  // at tiny n can legitimately leave no 3 consecutive certifiable rounds.)
  config.faults.resize(7);
  config.faults[1] = FaultSpec::crash_at_time(seconds(2));
  config.faults[2] = FaultSpec::crash_at_time(seconds(3));
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(20));

  const auto& ledger = cluster.ledger(0);
  EXPECT_GT(ledger.committed_blocks(), 10u);
  // Commits keep happening well after the crashes.
  const auto snapshot = ledger.snapshot();
  EXPECT_GT(snapshot.back().first_committed_at, seconds(10));
}

TEST(Integration, SilentByzantineDoesNotBlockProgress) {
  auto config = small_cluster(7, CoreMode::SftIntervals);
  config.faults.resize(7);
  config.faults[2] = FaultSpec::silent();
  config.faults[3] = FaultSpec::silent();  // adjacent — see crash test note
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(20));
  EXPECT_GT(cluster.ledger(0).committed_blocks(), 10u);
}

TEST(Integration, DeterministicReplay) {
  auto run = [](std::uint64_t seed) {
    Deployment cluster(small_cluster(4, CoreMode::SftMarker, seed));
    cluster.start();
    cluster.run_for(seconds(5));
    std::vector<std::pair<Height, std::uint32_t>> out;
    for (const auto& entry : cluster.ledger(0).snapshot()) {
      out.emplace_back(entry.height, entry.strength);
    }
    return out;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // different seeds shuffle jitter
}

TEST(Integration, MessageComplexityIsLinearPerBlock) {
  Deployment cluster(small_cluster(7, CoreMode::SftMarker));
  cluster.start();
  cluster.run_for(seconds(10));
  const auto& stats = cluster.net_stats();
  const auto blocks = cluster.ledger(0).committed_blocks();
  ASSERT_GT(blocks, 0u);
  const double per_block =
      static_cast<double>(stats.total_count()) / static_cast<double>(blocks);
  // Proposal multicast (n) + votes (n) + self-deliveries; comfortably linear:
  // allow 4n as the bound, far below the n^2 = 49 regime.
  EXPECT_LT(per_block, 4.0 * 7);
  EXPECT_EQ(stats.for_type("extra_vote").count, 0u);
}

}  // namespace
}  // namespace sftbft
