// Interval-set algebra (Sec. 3.4 substrate): unit cases plus a randomized
// property sweep against a reference std::set<Round> implementation.
#include <gtest/gtest.h>

#include <set>

#include "sftbft/common/interval_set.hpp"
#include "sftbft/common/rng.hpp"

namespace sftbft {
namespace {

TEST(IntervalSet, SingleAndContains) {
  const IntervalSet s = IntervalSet::single(3, 7);
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.cardinality(), 5u);
}

TEST(IntervalSet, EmptyWhenInverted) {
  EXPECT_TRUE(IntervalSet::single(5, 3).empty());
}

TEST(IntervalSet, AddMergesOverlapping) {
  IntervalSet s;
  s.add(1, 5);
  s.add(4, 9);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.min(), 1u);
  EXPECT_EQ(s.max(), 9u);
}

TEST(IntervalSet, AddMergesAdjacent) {
  IntervalSet s;
  s.add(1, 3);
  s.add(4, 6);  // adjacent: [1,3] + [4,6] = [1,6]
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.cardinality(), 6u);
}

TEST(IntervalSet, AddKeepsDisjoint) {
  IntervalSet s;
  s.add(1, 3);
  s.add(10, 12);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.contains(5));
}

TEST(IntervalSet, SubtractSplits) {
  IntervalSet s = IntervalSet::single(1, 10);
  s.subtract(4, 6);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.contains(7));
}

TEST(IntervalSet, SubtractEdges) {
  IntervalSet s = IntervalSet::single(1, 10);
  s.subtract(1, 3);
  s.subtract(9, 12);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.min(), 4u);
  EXPECT_EQ(s.max(), 8u);
}

TEST(IntervalSet, SubtractSet) {
  IntervalSet s = IntervalSet::single(1, 20);
  IntervalSet holes;
  holes.add(3, 4);
  holes.add(10, 15);
  s.subtract(holes);
  EXPECT_EQ(s.cardinality(), 20u - 2 - 6);
  EXPECT_FALSE(s.contains(12));
  EXPECT_TRUE(s.contains(16));
}

TEST(IntervalSet, ClampWindow) {
  IntervalSet s = IntervalSet::single(1, 100);
  s.clamp(40, 60);
  EXPECT_EQ(s.min(), 40u);
  EXPECT_EQ(s.max(), 60u);
}

TEST(IntervalSet, SerializationRoundTrip) {
  IntervalSet s;
  s.add(1, 5);
  s.add(9, 9);
  s.add(20, 31);
  Encoder enc;
  s.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(IntervalSet::decode(dec), s);
}

TEST(IntervalSet, DecodeRejectsOverlap) {
  Encoder enc;
  enc.u32(2);
  enc.u64(1);
  enc.u64(5);
  enc.u64(4);  // overlaps previous
  enc.u64(9);
  Decoder dec(enc.data());
  EXPECT_THROW(IntervalSet::decode(dec), CodecError);
}

TEST(IntervalSet, DecodeRejectsInverted) {
  Encoder enc;
  enc.u32(1);
  enc.u64(7);
  enc.u64(3);
  Decoder dec(enc.data());
  EXPECT_THROW(IntervalSet::decode(dec), CodecError);
}

TEST(IntervalSet, ToStringReadable) {
  IntervalSet s;
  EXPECT_EQ(s.to_string(), "(empty)");
  s.add(1, 4);
  s.add(7, 9);
  EXPECT_EQ(s.to_string(), "[1,4] [7,9]");
}

// ---- property sweep: random add/subtract sequences vs a reference model --

class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  IntervalSet set;
  std::set<Round> model;
  constexpr Round kDomain = 200;

  for (int op = 0; op < 400; ++op) {
    const Round lo = static_cast<Round>(rng.uniform(0, kDomain));
    const Round hi = lo + static_cast<Round>(rng.uniform(0, 20));
    if (rng.chance(0.6)) {
      set.add(lo, hi);
      for (Round r = lo; r <= hi; ++r) model.insert(r);
    } else {
      set.subtract(lo, hi);
      for (Round r = lo; r <= hi; ++r) model.erase(r);
    }
  }

  ASSERT_EQ(set.cardinality(), model.size());
  for (Round r = 0; r <= kDomain + 25; ++r) {
    ASSERT_EQ(set.contains(r), model.contains(r)) << "round " << r;
  }
  // Invariant: intervals sorted, disjoint, non-adjacent.
  const auto& ivs = set.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    ASSERT_LT(ivs[i - 1].hi + 1, ivs[i].lo);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace sftbft
