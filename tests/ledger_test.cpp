// Ledger: strength ratcheting, conflict detection, summaries.
#include <gtest/gtest.h>

#include "sftbft/chain/ledger.hpp"

namespace sftbft::chain {
namespace {

using types::Block;

Block block_at(Height height, Round round) {
  Block block;
  block.round = round;
  block.height = height;
  block.payload.txns.resize(10);
  block.created_at = static_cast<SimTime>(round) * 100;
  block.seal();
  return block;
}

TEST(Ledger, FirstCommitIsNew) {
  Ledger ledger;
  const Block b = block_at(1, 1);
  EXPECT_EQ(ledger.commit(b, 1, 500), Ledger::CommitResult::New);
  EXPECT_TRUE(ledger.is_committed(1));
  EXPECT_EQ(ledger.at(1).strength, 1u);
  EXPECT_EQ(ledger.at(1).first_committed_at, 500);
  EXPECT_EQ(ledger.at(1).created_at, 100);
  EXPECT_EQ(ledger.committed_txns(), 10u);
}

TEST(Ledger, StrengthRatchetsUpOnly) {
  Ledger ledger;
  const Block b = block_at(1, 1);
  ledger.commit(b, 1, 500);
  EXPECT_EQ(ledger.commit(b, 3, 600), Ledger::CommitResult::Raised);
  EXPECT_EQ(ledger.at(1).strength, 3u);
  EXPECT_EQ(ledger.at(1).last_strength_update_at, 600);
  EXPECT_EQ(ledger.commit(b, 2, 700), Ledger::CommitResult::NoChange);
  EXPECT_EQ(ledger.at(1).strength, 3u);
  EXPECT_EQ(ledger.at(1).first_committed_at, 500);  // unchanged
}

TEST(Ledger, ConflictingCommitThrows) {
  Ledger ledger;
  ledger.commit(block_at(1, 1), 1, 500);
  Block conflicting = block_at(1, 2);
  EXPECT_THROW(ledger.commit(conflicting, 1, 600), LedgerConflict);
}

TEST(Ledger, GenesisCommitIsNoop) {
  Ledger ledger;
  Block genesis = Block::genesis();
  EXPECT_EQ(ledger.commit(genesis, 1, 0), Ledger::CommitResult::NoChange);
  EXPECT_EQ(ledger.committed_blocks(), 0u);
}

TEST(Ledger, TipAndSnapshot) {
  Ledger ledger;
  EXPECT_FALSE(ledger.tip().has_value());
  ledger.commit(block_at(1, 1), 1, 100);
  ledger.commit(block_at(2, 2), 1, 200);
  ledger.commit(block_at(3, 3), 1, 300);
  EXPECT_EQ(ledger.tip(), 3u);
  const auto snapshot = ledger.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].height, 1u);
  EXPECT_EQ(snapshot[2].height, 3u);
}

TEST(Ledger, OutOfOrderHeightsSupported) {
  // Strong commits apply to a head and ancestors; heights can arrive
  // high-first within one commit walk.
  Ledger ledger;
  ledger.commit(block_at(5, 5), 2, 100);
  ledger.commit(block_at(4, 4), 2, 100);
  EXPECT_TRUE(ledger.is_committed(5));
  EXPECT_TRUE(ledger.is_committed(4));
  EXPECT_FALSE(ledger.is_committed(3));
  EXPECT_EQ(ledger.tip(), 5u);
}

}  // namespace
}  // namespace sftbft::chain
