// Sec. 5 light-client proofs: build from a live replica, verify with only
// the PKI, and reject every class of tampering.
#include <gtest/gtest.h>

#include "sftbft/lightclient/light_client.hpp"
#include "sftbft/engine/deployment.hpp"

namespace sftbft {
namespace {

using engine::Deployment;
using engine::DeploymentConfig;

class LightClientTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 7;
  static constexpr std::uint32_t kF = 2;

  void SetUp() override {
    DeploymentConfig config;
    config.n = kN;
    config.diem.mode = consensus::CoreMode::SftMarker;
    config.diem.base_timeout = millis(500);
    config.diem.leader_processing = millis(5);
    config.diem.max_batch = 10;
    config.topology = net::Topology::uniform(kN, millis(10));
    config.net.jitter = millis(2);
    config.seed = 9;
    cluster_ = std::make_unique<Deployment>(std::move(config));
    cluster_->start();
    cluster_->run_for(seconds(8));
  }

  /// A 2f-strong committed block id from replica 0's ledger.
  types::BlockId strong_block() {
    for (const auto& entry : cluster_->diem_core(0).ledger().snapshot()) {
      if (entry.strength >= 2 * kF) return entry.block_id;
    }
    ADD_FAILURE() << "no 2f-strong block";
    return {};
  }

  std::unique_ptr<Deployment> cluster_;
};

TEST_F(LightClientTest, BuildAndVerify) {
  const auto target = strong_block();
  const auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);
  EXPECT_TRUE(client.verify(*proof));
}

TEST_F(LightClientTest, ProofsPortableAcrossReplicas) {
  // A proof built by one full node verifies for a client that has never
  // talked to it; and other replicas can build equivalent proofs.
  const auto target = strong_block();
  lightclient::LightClient client(cluster_->registry(), kN);
  int provers = 0;
  for (ReplicaId id = 0; id < kN; ++id) {
    const auto proof =
        lightclient::build_proof(cluster_->diem_core(id), target, 2 * kF);
    if (proof.has_value()) {
      EXPECT_TRUE(client.verify(*proof)) << "prover " << id;
      ++provers;
    }
  }
  EXPECT_GE(provers, static_cast<int>(2 * kF + 1));
}

TEST_F(LightClientTest, RejectsInflatedStrength) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.strength = 2 * kF + 1;  // above the 2f ceiling
  EXPECT_FALSE(client.verify(forged));

  forged = *proof;
  forged.entry.strength += 1;  // entry no longer matches the signed log
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsTamperedCarrier) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.carrier.commit_log.push_back(
      {.block_id = target, .round = 1, .strength = 2 * kF});
  EXPECT_FALSE(client.verify(forged));  // signature no longer covers the log

  forged = *proof;
  forged.carrier.block.round += 1;  // block id no longer matches content
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsThinOrForeignQc) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.carrier_qc.votes.resize(2 * kF);  // below quorum
  EXPECT_FALSE(client.verify(forged));

  forged = *proof;
  forged.carrier_qc.round += 1;  // certifies a different round
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsBrokenAncestryPath) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.target.bytes[5] ^= 0x01;  // proof is not about this block
  EXPECT_FALSE(client.verify(forged));

  if (!proof->path.empty()) {
    forged = *proof;
    forged.path.pop_back();  // path no longer reaches the logged head
    EXPECT_FALSE(client.verify(forged));
  }
}

TEST_F(LightClientTest, BuildFailsForUnprovableClaims) {
  const auto target = strong_block();
  // Nobody can prove strength above 2f.
  EXPECT_FALSE(lightclient::build_proof(cluster_->diem_core(0), target,
                                        2 * kF + 1)
                   .has_value());
  // Unknown block.
  types::BlockId unknown{};
  unknown.bytes[1] = 0xee;
  EXPECT_FALSE(
      lightclient::build_proof(cluster_->diem_core(0), unknown, kF)
          .has_value());
}

}  // namespace
}  // namespace sftbft
