// Sec. 5 light-client proofs: build from a live replica, verify with only
// the PKI, and reject every class of tampering.
#include <gtest/gtest.h>

#include "sftbft/lightclient/light_client.hpp"
#include "sftbft/engine/deployment.hpp"

namespace sftbft {
namespace {

using engine::Deployment;
using engine::DeploymentConfig;

class LightClientTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 7;
  static constexpr std::uint32_t kF = 2;

  void SetUp() override {
    DeploymentConfig config;
    config.n = kN;
    config.chained.mode = consensus::CoreMode::SftMarker;
    config.chained.base_timeout = millis(500);
    config.chained.leader_processing = millis(5);
    config.chained.max_batch = 10;
    config.topology = net::Topology::uniform(kN, millis(10));
    config.net.jitter = millis(2);
    config.seed = 9;
    cluster_ = std::make_unique<Deployment>(std::move(config));
    cluster_->start();
    cluster_->run_for(seconds(8));
  }

  /// A 2f-strong committed block id from replica 0's ledger.
  types::BlockId strong_block() {
    for (const auto& entry : cluster_->diem_core(0).ledger().snapshot()) {
      if (entry.strength >= 2 * kF) return entry.block_id;
    }
    ADD_FAILURE() << "no 2f-strong block";
    return {};
  }

  std::unique_ptr<Deployment> cluster_;
};

TEST_F(LightClientTest, BuildAndVerify) {
  const auto target = strong_block();
  const auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);
  EXPECT_TRUE(client.verify(*proof));
}

TEST_F(LightClientTest, ProofsPortableAcrossReplicas) {
  // A proof built by one full node verifies for a client that has never
  // talked to it; and other replicas can build equivalent proofs.
  const auto target = strong_block();
  lightclient::LightClient client(cluster_->registry(), kN);
  int provers = 0;
  for (ReplicaId id = 0; id < kN; ++id) {
    const auto proof =
        lightclient::build_proof(cluster_->diem_core(id), target, 2 * kF);
    if (proof.has_value()) {
      EXPECT_TRUE(client.verify(*proof)) << "prover " << id;
      ++provers;
    }
  }
  EXPECT_GE(provers, static_cast<int>(2 * kF + 1));
}

TEST_F(LightClientTest, RejectsInflatedStrength) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.strength = 2 * kF + 1;  // above the 2f ceiling
  EXPECT_FALSE(client.verify(forged));

  forged = *proof;
  forged.entry.strength += 1;  // entry no longer matches the signed log
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsTamperedCarrier) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.carrier.commit_log.push_back(
      {.block_id = target, .round = 1, .strength = 2 * kF});
  EXPECT_FALSE(client.verify(forged));  // signature no longer covers the log

  forged = *proof;
  forged.carrier.block.round += 1;  // block id no longer matches content
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsThinOrForeignQc) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.carrier_qc.votes.resize(2 * kF);  // below quorum
  EXPECT_FALSE(client.verify(forged));

  forged = *proof;
  forged.carrier_qc.round += 1;  // certifies a different round
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsBrokenAncestryPath) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.target.bytes[5] ^= 0x01;  // proof is not about this block
  EXPECT_FALSE(client.verify(forged));

  if (!proof->path.empty()) {
    forged = *proof;
    forged.path.pop_back();  // path no longer reaches the logged head
    EXPECT_FALSE(client.verify(forged));
  }
}

TEST_F(LightClientTest, RejectsDuplicateSignerQc) {
  // An adversary controlling f + 1 replicas padding a QC to 2f + 1 votes by
  // repeating its own signers: size passes, distinctness must not.
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  ASSERT_GE(forged.carrier_qc.votes.size(), 2u);
  forged.carrier_qc.votes[1] = forged.carrier_qc.votes[0];  // duplicate voter
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsAdversaryForgedCommitLog) {
  // A corrupted leader CAN sign a carrier proposal whose Log claims any
  // strength it likes — the proof must still die on the certification step:
  // without 2f + 1 distinct honest-or-not voters the Log is worthless.
  const auto target = strong_block();
  const auto honest =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(honest.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *honest;
  // The corrupted proposer rewrites the Log entry to an inflated strength
  // and re-signs the proposal with its own (legitimate) key.
  ASSERT_FALSE(forged.carrier.commit_log.empty());
  forged.carrier.commit_log[0].strength = 2 * kF;
  forged.entry = forged.carrier.commit_log[0];
  forged.target = forged.entry.block_id;
  forged.path.clear();
  const ReplicaId proposer = forged.carrier.block.proposer;
  forged.carrier.sig = cluster_->registry()
                           ->signer_for(proposer)
                           .sign(forged.carrier.signing_bytes());
  // The proposer's re-signature is valid, but the Log digest sealed into
  // the (still certified) block header no longer matches the rewritten Log.
  EXPECT_FALSE(client.verify(forged));

  // Even rebuilding the carrier block around the forged Log fails: the new
  // block id voids the original QC, and the f + 1 colluding replicas cannot
  // produce 2f + 1 distinct valid votes for the rebuilt block — their
  // refolded aggregate is genuine but its signer bitmap is sub-quorum.
  forged.carrier.block.log_digest =
      types::commit_log_digest(forged.carrier.commit_log);
  forged.carrier.block.seal();
  forged.carrier.sig = cluster_->registry()
                           ->signer_for(proposer)
                           .sign(forged.carrier.signing_bytes());
  forged.carrier_qc.block_id = forged.carrier.block.id;
  forged.carrier_qc.votes.clear();
  forged.carrier_qc.agg = {};
  for (ReplicaId colluder = 0; colluder <= kF; ++colluder) {  // only f+1 keys
    types::Vote vote;
    vote.block_id = forged.carrier.block.id;
    vote.round = forged.carrier_qc.round;
    vote.voter = colluder;
    vote.mode = types::VoteMode::Marker;
    vote.sig = cluster_->registry()->signer_for(colluder).sign(
        vote.signing_bytes());
    forged.carrier_qc.add_vote(vote);
  }
  forged.carrier_qc.canonicalize();
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsForgedAggregateTag) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  auto forged = *proof;
  forged.carrier_qc.agg.tag[11] ^= 0x40;  // forged aggregate tag
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, RejectsBitmapMetadataLengthMismatch) {
  const auto target = strong_block();
  auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  // One more meta than the bitmap names (and the mirror image).
  auto forged = *proof;
  forged.carrier_qc.votes.push_back(forged.carrier_qc.votes.back());
  forged.carrier_qc.votes.back().voter = kN - 1;
  EXPECT_FALSE(client.verify(forged));

  forged = *proof;
  forged.carrier_qc.votes.pop_back();
  EXPECT_FALSE(client.verify(forged));
}

TEST_F(LightClientTest, MemoBypassTamperFailsFreshVerification) {
  // The client memoizes successful certificate verifications by the digest
  // of the certificate's full canonical encoding. Mutating *any* byte after
  // a successful verification must miss the memo and fail a fresh check —
  // the memo can never be used to launder a tampered certificate.
  const auto target = strong_block();
  const auto proof =
      lightclient::build_proof(cluster_->diem_core(0), target, 2 * kF);
  ASSERT_TRUE(proof.has_value());
  lightclient::LightClient client(cluster_->registry(), kN);

  ASSERT_TRUE(client.verify(*proof));  // warms the client's memo

  auto tampered = *proof;
  tampered.carrier_qc.agg.tag[3] ^= 0x80;
  EXPECT_FALSE(client.verify(tampered));

  auto meta_tampered = *proof;
  ASSERT_FALSE(meta_tampered.carrier_qc.votes.empty());
  meta_tampered.carrier_qc.votes[0].meta.marker += 1;
  EXPECT_FALSE(client.verify(meta_tampered));

  auto bitmap_tampered = *proof;
  // Swap one voter identity in both the bitmap and the meta list: lengths
  // still align, but the folded MACs belong to the original voter set.
  const ReplicaId absent = [&] {
    for (ReplicaId id = 0; id < kN; ++id) {
      if (!bitmap_tampered.carrier_qc.agg.signers.test(id)) return id;
    }
    return kNoReplica;
  }();
  if (absent != kNoReplica) {
    auto& qc = bitmap_tampered.carrier_qc;
    const ReplicaId swapped_out = qc.votes.back().voter;
    qc.agg.signers.clear(swapped_out);
    qc.agg.signers.set(absent);
    qc.votes.back().voter = absent;
    qc.canonicalize();
    EXPECT_FALSE(client.verify(bitmap_tampered));
  }

  // The untampered proof still verifies after all the failed attempts.
  EXPECT_TRUE(client.verify(*proof));
}

TEST_F(LightClientTest, RejectsTruncatedBlockPath) {
  // Find a proof whose claim rides on a descendant 3-chain head, so the
  // ancestry path is non-empty, then truncate it at both ends.
  lightclient::LightClient client(cluster_->registry(), kN);
  const auto& core = cluster_->diem_core(0);
  for (const auto& entry : core.ledger().snapshot()) {
    if (entry.strength < 2 * kF) continue;
    const auto proof =
        lightclient::build_proof(core, entry.block_id, 2 * kF);
    if (!proof || proof->path.empty()) continue;
    ASSERT_TRUE(client.verify(*proof));

    auto forged = *proof;
    forged.path.pop_back();  // no longer reaches the logged head
    EXPECT_FALSE(client.verify(forged));

    forged = *proof;
    forged.path.erase(forged.path.begin());  // no longer starts at target
    EXPECT_FALSE(client.verify(forged));

    forged = *proof;
    forged.path.clear();  // claim about an ancestor with no path at all
    EXPECT_FALSE(client.verify(forged));
    return;
  }
  GTEST_SKIP() << "no proof with a non-empty ancestry path in this run";
}

TEST_F(LightClientTest, BuildFailsForUnprovableClaims) {
  const auto target = strong_block();
  // Nobody can prove strength above 2f.
  EXPECT_FALSE(lightclient::build_proof(cluster_->diem_core(0), target,
                                        2 * kF + 1)
                   .has_value());
  // Unknown block.
  types::BlockId unknown{};
  unknown.bytes[1] = 0xee;
  EXPECT_FALSE(
      lightclient::build_proof(cluster_->diem_core(0), unknown, kF)
          .has_value());
}

}  // namespace
}  // namespace sftbft
