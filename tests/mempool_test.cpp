// Mempool + workload generation: batching, in-flight tracking, requeue.
#include <gtest/gtest.h>

#include "sftbft/mempool/mempool.hpp"

namespace sftbft::mempool {
namespace {

types::Transaction txn(std::uint64_t id) {
  return {.id = id, .submitted_at = 0, .size_bytes = 450};
}

TEST(Mempool, BatchTakesOldestFirst) {
  Mempool pool;
  for (std::uint64_t i = 0; i < 10; ++i) pool.submit(txn(i));
  const types::Payload batch = pool.make_batch(4);
  ASSERT_EQ(batch.txns.size(), 4u);
  EXPECT_EQ(batch.txns[0].id, 0u);
  EXPECT_EQ(batch.txns[3].id, 3u);
  EXPECT_EQ(pool.pending(), 6u);
  EXPECT_EQ(pool.in_flight(), 4u);
}

TEST(Mempool, BatchSmallerWhenPoolLow) {
  Mempool pool;
  pool.submit(txn(1));
  EXPECT_EQ(pool.make_batch(100).txns.size(), 1u);
  EXPECT_TRUE(pool.make_batch(100).txns.empty());
}

TEST(Mempool, CommittedBatchLeavesInFlight) {
  Mempool pool;
  for (std::uint64_t i = 0; i < 5; ++i) pool.submit(txn(i));
  const types::Payload batch = pool.make_batch(5);
  pool.mark_committed(batch);
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Mempool, RequeueReturnsTxns) {
  Mempool pool;
  for (std::uint64_t i = 0; i < 5; ++i) pool.submit(txn(i));
  const types::Payload batch = pool.make_batch(3);
  pool.requeue(batch);
  EXPECT_EQ(pool.pending(), 5u);
  EXPECT_EQ(pool.in_flight(), 0u);
  // Requeued txns can be batched again.
  EXPECT_EQ(pool.make_batch(5).txns.size(), 5u);
}

TEST(Mempool, RequeueAfterCommitIsNoop) {
  Mempool pool;
  pool.submit(txn(1));
  const types::Payload batch = pool.make_batch(1);
  pool.mark_committed(batch);
  pool.requeue(batch);  // already committed: nothing to return
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Mempool, SubmitDedupsById) {
  Mempool pool;
  EXPECT_EQ(pool.submit(txn(7)), Mempool::Admit::kAccepted);
  EXPECT_EQ(pool.submit(txn(7)), Mempool::Admit::kDuplicate);
  EXPECT_EQ(pool.pending(), 1u);
  // Still a duplicate while the txn is in flight...
  const types::Payload batch = pool.make_batch(1);
  EXPECT_EQ(pool.submit(txn(7)), Mempool::Admit::kDuplicate);
  // ...and after it committed (the bounded committed window).
  pool.mark_committed(batch);
  EXPECT_EQ(pool.submit(txn(7)), Mempool::Admit::kDuplicate);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Mempool, RequeuedTxnStaysDeduped) {
  Mempool pool;
  pool.submit(txn(3));
  const types::Payload batch = pool.make_batch(1);
  pool.requeue(batch);
  EXPECT_EQ(pool.submit(txn(3)), Mempool::Admit::kDuplicate);
  EXPECT_EQ(pool.pending(), 1u);
}

TEST(Mempool, BoundedCapacityBackpressure) {
  Mempool pool;
  pool.set_capacity(3);
  EXPECT_EQ(pool.submit(txn(0)), Mempool::Admit::kAccepted);
  EXPECT_EQ(pool.submit(txn(1)), Mempool::Admit::kAccepted);
  EXPECT_EQ(pool.submit(txn(2)), Mempool::Admit::kAccepted);
  EXPECT_EQ(pool.submit(txn(3)), Mempool::Admit::kFull);
  EXPECT_EQ(pool.pending(), 3u);
  // Draining the queue (even into in-flight) frees capacity: the bound is
  // on the pending backlog, not on total outstanding work.
  (void)pool.make_batch(2);
  EXPECT_EQ(pool.submit(txn(3)), Mempool::Admit::kAccepted);
  // Duplicate check runs before the capacity check — a retry of a queued
  // txn must not read as backpressure.
  EXPECT_EQ(pool.submit(txn(3)), Mempool::Admit::kDuplicate);
}

TEST(Mempool, CapacityZeroIsUnbounded) {
  Mempool pool;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(pool.submit(txn(i)), Mempool::Admit::kAccepted);
  }
  EXPECT_EQ(pool.pending(), 5000u);
}

TEST(Workload, TopUpFillsToTarget) {
  sim::Scheduler sched;
  Mempool pool;
  WorkloadGenerator gen(sched, pool,
                        {.mean_interarrival = 0, .target_pool_size = 50},
                        Rng(1));
  gen.top_up();
  EXPECT_EQ(pool.pending(), 50u);
}

TEST(Workload, PoissonArrivalsRespectTarget) {
  sim::Scheduler sched;
  Mempool pool;
  WorkloadGenerator gen(
      sched, pool,
      {.mean_interarrival = millis(1), .target_pool_size = 20}, Rng(2));
  gen.start();
  sched.run_for(seconds(1));
  EXPECT_LE(pool.pending(), 20u);
  EXPECT_GT(pool.pending(), 0u);
}

TEST(Workload, IdSpacesDisjoint) {
  sim::Scheduler sched;
  Mempool pool_a, pool_b;
  WorkloadGenerator gen_a(sched, pool_a, {.target_pool_size = 10}, Rng(1));
  WorkloadGenerator gen_b(sched, pool_b, {.target_pool_size = 10}, Rng(1));
  gen_a.set_id_space(1);
  gen_b.set_id_space(2);
  gen_a.top_up();
  gen_b.top_up();
  const auto batch_a = pool_a.make_batch(10);
  const auto batch_b = pool_b.make_batch(10);
  for (const auto& ta : batch_a.txns) {
    for (const auto& tb : batch_b.txns) EXPECT_NE(ta.id, tb.id);
  }
}

}  // namespace
}  // namespace sftbft::mempool
