// Harness metrics: the Sec.-4 aggregation ("average over all blocks over
// all replicas"), window filtering, coverage, ledger summaries, plus the
// scenario builder's derived values.
#include <gtest/gtest.h>

#include "sftbft/harness/metrics.hpp"
#include "sftbft/harness/scenario.hpp"
#include "sftbft/harness/table.hpp"

namespace sftbft::harness {
namespace {

types::Block block_with(Round round, SimTime created) {
  types::Block block;
  block.round = round;
  block.height = round;
  block.created_at = created;
  block.seal();
  return block;
}

TEST(StrengthLatencyTracker, CreditsLevelsUpToStrength) {
  StrengthLatencyTracker tracker(/*n=*/2, {1, 2, 3});
  const types::Block b = block_with(1, 1000);
  tracker.on_commit(0, b, 2, 3000);  // credits levels 1 and 2
  tracker.on_commit(0, b, 3, 5000);  // credits level 3
  const auto results = tracker.results();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].samples, 1u);
  EXPECT_DOUBLE_EQ(results[0].mean_latency_s, 0.002);
  EXPECT_DOUBLE_EQ(results[1].mean_latency_s, 0.002);
  EXPECT_DOUBLE_EQ(results[2].mean_latency_s, 0.004);
}

TEST(StrengthLatencyTracker, NoDoubleCreditPerReplica) {
  StrengthLatencyTracker tracker(2, {1});
  const types::Block b = block_with(1, 0);
  tracker.on_commit(0, b, 1, 100);
  tracker.on_commit(0, b, 2, 200);  // level 1 already credited for replica 0
  const auto results = tracker.results();
  EXPECT_EQ(results[0].samples, 1u);
}

TEST(StrengthLatencyTracker, AveragesAcrossReplicasAndBlocks) {
  StrengthLatencyTracker tracker(2, {1});
  const types::Block a = block_with(1, 0);
  const types::Block b = block_with(2, 1000);
  tracker.on_commit(0, a, 1, 1000);   // 1ms
  tracker.on_commit(1, a, 1, 3000);   // 3ms
  tracker.on_commit(0, b, 1, 3000);   // 2ms
  const auto results = tracker.results();
  EXPECT_EQ(results[0].samples, 3u);
  EXPECT_EQ(results[0].blocks, 2u);
  EXPECT_DOUBLE_EQ(results[0].mean_latency_s, 0.002);
}

TEST(StrengthLatencyTracker, WindowExcludesBlocks) {
  StrengthLatencyTracker tracker(1, {1});
  tracker.on_commit(0, block_with(1, 50), 1, 100);
  tracker.on_commit(0, block_with(2, 500), 1, 600);
  tracker.on_commit(0, block_with(3, 950), 1, 1000);
  tracker.set_window(100, 900);
  const auto results = tracker.results();
  EXPECT_EQ(results[0].samples, 1u);  // only the middle block
  EXPECT_EQ(tracker.window_blocks(), 1u);
}

TEST(StrengthLatencyTracker, CoverageFraction) {
  StrengthLatencyTracker tracker(/*n=*/4, {1});
  const types::Block b = block_with(1, 0);
  tracker.on_commit(0, b, 1, 10);
  tracker.on_commit(1, b, 1, 20);
  const auto results = tracker.results();
  // 2 of 4 replicas reached level 1 for the single block in window.
  EXPECT_DOUBLE_EQ(results[0].coverage, 0.5);
}

TEST(LedgerSummary, ComputesThroughputAndLatency) {
  chain::Ledger ledger;
  for (Round r = 1; r <= 4; ++r) {
    types::Block b = block_with(r, r * 1000);
    b.payload.txns.resize(10);
    b.seal();
    ledger.commit(b, 1, r * 1000 + 500);
  }
  const LedgerSummary summary =
      summarize_ledger(ledger, seconds(1), 0, seconds(1));
  EXPECT_EQ(summary.committed_blocks, 4u);
  EXPECT_EQ(summary.committed_txns, 40u);
  EXPECT_DOUBLE_EQ(summary.mean_regular_latency_s, 0.0005);
  EXPECT_DOUBLE_EQ(summary.txns_per_sec, 40.0);
}

TEST(Scenario, StrengthLevelsSpanFToTwoF) {
  Scenario s;
  s.n = 100;  // f = 33
  const auto levels = s.strength_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), 33u);
  EXPECT_EQ(levels.back(), 66u);
  EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
}

TEST(Scenario, DefaultTimeoutCoversExpectedRound) {
  Scenario s;
  s.topo = Scenario::Topo::Symmetric3;
  s.delta = millis(100);
  s.leader_processing = millis(80);
  EXPECT_GT(s.default_timeout(), s.expected_round());
}

TEST(Scenario, DeploymentConfigReflectsFields) {
  Scenario s;
  s.n = 10;
  s.topo = Scenario::Topo::Uniform;
  s.delta = millis(5);
  s.extra_wait = millis(30);
  s.fbft = true;
  const auto config = s.to_deployment_config();
  EXPECT_EQ(config.protocol, engine::Protocol::DiemBft);
  EXPECT_EQ(config.n, 10u);
  EXPECT_EQ(config.topology.size(), 10u);
  EXPECT_TRUE(config.chained.fbft_mode);
  EXPECT_EQ(config.chained.mode, consensus::CoreMode::Plain);  // forced
  ASSERT_TRUE(config.chained.extra_wait);
  EXPECT_EQ(config.chained.extra_wait(1), millis(30));
  EXPECT_FALSE(config.chained.attach_commit_log);  // disabled under FBFT
}

TEST(Scenario, DeploymentConfigCarriesStreamletFields) {
  Scenario s;
  s.n = 7;
  s.topo = Scenario::Topo::Uniform;
  s.protocol = engine::Protocol::Streamlet;
  s.mode = consensus::CoreMode::SftMarker;
  s.streamlet_delta_bound = millis(25);
  s.streamlet_echo = false;
  const auto config = s.to_deployment_config();
  EXPECT_EQ(config.protocol, engine::Protocol::Streamlet);
  EXPECT_TRUE(config.streamlet.sft);
  EXPECT_FALSE(config.streamlet.echo);
  EXPECT_EQ(config.streamlet.delta_bound, millis(25));
}

TEST(Scenario, StragglersGetExtraDelay) {
  Scenario s;
  s.n = 10;
  s.topo = Scenario::Topo::Uniform;
  s.straggler_count = 2;
  s.straggler_extra = millis(40);
  const auto topo = s.build_topology();
  std::uint32_t stragglers = 0;
  for (ReplicaId id = 0; id < 10; ++id) {
    if (topo.extra_delay(id) == millis(40)) ++stragglers;
  }
  EXPECT_EQ(stragglers, 2u);
}

TEST(Table, RendersAlignedAndCsv) {
  Table table({"a", "long-header"});
  table.add_row({"1", "x"});
  table.add_row({"22", "yy"});
  const std::string text = table.render();
  EXPECT_NE(text.find("long-header"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.render_csv(), "a,long-header\n1,x\n22,yy\n");
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace sftbft::harness
