// Appendix C regression: the naive all-indirect-votes counter reports a
// false (f+1)-strong commit on the Figure 9 fork; the SFT marker rule does
// not. This is the counter-example that motivates the whole marker design —
// keep it green forever.
#include <gtest/gtest.h>

#include "sftbft/core/strength.hpp"

namespace sftbft::core {
namespace {

using types::Block;
using types::QuorumCert;
using types::Vote;
using types::VoteMode;

constexpr std::uint32_t kF = 2;
constexpr std::uint32_t kN = 3 * kF + 1;

// Cast: honest h1..h_{2f} = ids 0..2f-1, Byzantine b1..b_{f+1} = ids 2f..3f.
constexpr ReplicaId h(std::uint32_t i) { return i - 1; }
constexpr ReplicaId b(std::uint32_t i) { return 2 * kF + i - 1; }

Block child_of(const Block& parent, Round round) {
  Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.seal();
  return block;
}

Vote vote_for(const Block& block, ReplicaId voter, Round marker) {
  Vote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.voter = voter;
  vote.mode = VoteMode::Marker;
  vote.marker = marker;
  return vote;
}

QuorumCert qc_for(const Block& block, std::vector<Vote> votes) {
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = block.round;
  qc.parent_id = block.parent_id;
  qc.parent_round = block.qc.round;
  // Structural assembly (no signatures): the tracker consumes voter + meta
  // and never checks the aggregate, so the bitmap is set directly.
  for (const Vote& vote : votes) {
    qc.votes.push_back({vote.voter, vote.meta()});
    qc.agg.signers.set(vote.voter);
  }
  qc.canonicalize();
  return qc;
}

class Figure9 : public ::testing::Test {
 protected:
  chain::BlockTree tree_;
  Block genesis_ = tree_.genesis();
  Block b_rm1_ = child_of(genesis_, 1);  // B_{r-1}
  Block b_r_ = child_of(b_rm1_, 2);      // B_r
  Block b_r1_ = child_of(b_r_, 3);       // B_{r+1}
  Block b_r1p_ = child_of(b_rm1_, 3);    // B'_{r+1}: the Byzantine fork
  Block b_r2_ = child_of(b_r1_, 4);      // B_{r+2}

  void SetUp() override {
    for (const Block* blk : {&b_rm1_, &b_r_, &b_r1_, &b_r1p_, &b_r2_}) {
      ASSERT_EQ(tree_.insert(*blk), chain::BlockTree::InsertResult::Inserted);
    }
  }

  /// Runs the Figure 9 vote schedule through a tracker with `rule`.
  std::uint32_t run_figure9(CountingRule rule) {
    StrengthTracker tracker(tree_, kN, kF, rule);

    // Rounds r, r+1: h1..hf and b1..b_{f+1} vote the main branch.
    std::vector<Vote> votes_r, votes_r1;
    for (std::uint32_t i = 1; i <= kF; ++i) {
      votes_r.push_back(vote_for(b_r_, h(i), 0));
      votes_r1.push_back(vote_for(b_r1_, h(i), 0));
    }
    for (std::uint32_t i = 1; i <= kF + 1; ++i) {
      votes_r.push_back(vote_for(b_r_, b(i), 0));
      votes_r1.push_back(vote_for(b_r1_, b(i), 0));
    }
    // The fork B'_{r+1}: the other f honest replicas + all Byzantine.
    std::vector<Vote> votes_fork;
    for (std::uint32_t i = kF + 1; i <= 2 * kF; ++i) {
      votes_fork.push_back(vote_for(b_r1p_, h(i), 0));
    }
    for (std::uint32_t i = 1; i <= kF + 1; ++i) {
      votes_fork.push_back(vote_for(b_r1p_, b(i), 0));
    }
    // Round r+2 on the main branch: h1..hf, all Byzantine (lying marker 0),
    // and crucially h_{f+1}, whose honest marker is the fork round 3.
    std::vector<Vote> votes_r2;
    for (std::uint32_t i = 1; i <= kF; ++i) {
      votes_r2.push_back(vote_for(b_r2_, h(i), 0));
    }
    for (std::uint32_t i = 1; i <= kF + 1; ++i) {
      votes_r2.push_back(vote_for(b_r2_, b(i), 0));
    }
    votes_r2.push_back(vote_for(b_r2_, h(kF + 1), /*truthful marker=*/3));

    tracker.process_qc(qc_for(b_r_, std::move(votes_r)));
    tracker.process_qc(qc_for(b_r1_, std::move(votes_r1)));
    tracker.process_qc(qc_for(b_r1p_, std::move(votes_fork)));
    tracker.process_qc(qc_for(b_r2_, std::move(votes_r2)));
    return tracker.head_strength(b_r_.id);
  }
};

TEST_F(Figure9, NaiveCountingClaimsUnsafeStrength) {
  // The naive rule counts h_{f+1}'s indirect vote toward B_r, reporting
  // (f+1)-strong — but the adversary can build a conflicting (f+1)-strong
  // commit on the B'_{r+1} fork (Appendix C): a safety violation.
  EXPECT_EQ(run_figure9(CountingRule::NaiveAllIndirect), kF + 1);
}

TEST_F(Figure9, SftMarkerStaysAtRegularStrength) {
  // The marker (= 3, the conflicting vote's round) blocks the false credit:
  // B_r keeps exactly the regular f-strong guarantee.
  EXPECT_EQ(run_figure9(CountingRule::Sft), kF);
}

TEST_F(Figure9, ForkCanMatchNaiveStrengthLater) {
  // Sanity for the second half of Appendix C: with f+1 corruptions the
  // adversary CAN certify blocks extending the fork (honest replicas'
  // r_lock <= r+1 admits B'_{r+4}), so a conflicting "(f+1)-strong" claim
  // is reachable — which is why the naive answer above is fatal.
  const Block b_r4p = child_of(b_r1p_, 5);
  ASSERT_EQ(tree_.insert(b_r4p), chain::BlockTree::InsertResult::Inserted);
  EXPECT_TRUE(tree_.conflicts(b_r4p.id, b_r_.id));
}

}  // namespace
}  // namespace sftbft::core
