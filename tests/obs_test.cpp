// sftbft::obs: histogram bucket/percentile correctness (merge included),
// Chrome-trace JSON well-formedness, flight-recorder ring eviction, and the
// cross-engine observability conformance the enum vocabulary promises —
// identical metric key sets on DiemBFT, chained HotStuff, and Streamlet.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <map>

#include "sftbft/harness/perf_gate.hpp"
#include "sftbft/harness/scenario.hpp"
#include "sftbft/obs/metrics.hpp"
#include "sftbft/obs/observer.hpp"
#include "sftbft/obs/trace.hpp"

namespace sftbft::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, LowValuesLandInExactUnitBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const std::size_t b = Histogram::bucket_for(v);
    EXPECT_EQ(Histogram::bucket_lower(b), v);
    EXPECT_EQ(Histogram::bucket_upper(b), v + 1);
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  for (const std::uint64_t v :
       {16ull, 17ull, 31ull, 32ull, 1000ull, 123456789ull,
        (1ull << 40) + 12345ull, (1ull << 61)}) {
    const std::size_t b = Histogram::bucket_for(v);
    EXPECT_LE(Histogram::bucket_lower(b), v) << v;
    EXPECT_LT(v, Histogram::bucket_upper(b)) << v;
  }
}

TEST(Histogram, RelativeQuantizationErrorIsBounded) {
  // Bucket width / lower bound <= 2^-kSubBits for all non-unit buckets.
  for (const std::uint64_t v : {100ull, 999ull, 65536ull, 1000000ull}) {
    const std::size_t b = Histogram::bucket_for(v);
    const double width = static_cast<double>(Histogram::bucket_upper(b) -
                                             Histogram::bucket_lower(b));
    const double lower = static_cast<double>(Histogram::bucket_lower(b));
    EXPECT_LE(width / lower, 1.0 / Histogram::kSubBuckets) << v;
  }
}

TEST(Histogram, SummaryOnUniformRange) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 1000);
  EXPECT_DOUBLE_EQ(s.mean, 500.5);
  // Percentiles are bucket midpoints: exact to 6.25% of the value.
  EXPECT_NEAR(static_cast<double>(s.p50), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(s.p90), 900.0, 900.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(s.p99), 990.0, 990.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(s.p999), 999.0, 999.0 / 16 + 1);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0);
  EXPECT_EQ(empty.summary().count, 0u);

  Histogram one;
  one.record(42);
  EXPECT_EQ(one.summary().min, 42);
  EXPECT_EQ(one.summary().max, 42);
  // 42 sits in a linear sub-bucket of width 4: midpoint within the bound.
  EXPECT_NEAR(static_cast<double>(one.percentile(0.5)), 42.0, 42.0 / 16 + 1);

  Histogram neg;
  neg.record(-5);  // clamps to 0 rather than UB
  EXPECT_EQ(neg.summary().min, 0);
  EXPECT_EQ(neg.count(), 1u);
}

TEST(Histogram, MergeMatchesSingleHistogramExactly) {
  // Positional bucket addition: merging per-replica histograms must be
  // bucket-identical to recording every sample into one histogram — the
  // property cross-replica percentile aggregation rests on.
  Histogram a, b, all;
  std::uint64_t x = 1;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto v = static_cast<std::int64_t>(x >> 34);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  const HistogramSummary merged = a.summary();
  const HistogramSummary single = all.summary();
  EXPECT_EQ(merged.count, single.count);
  EXPECT_EQ(merged.min, single.min);
  EXPECT_EQ(merged.max, single.max);
  EXPECT_DOUBLE_EQ(merged.mean, single.mean);
  EXPECT_EQ(merged.p50, single.p50);
  EXPECT_EQ(merged.p90, single.p90);
  EXPECT_EQ(merged.p99, single.p99);
  EXPECT_EQ(merged.p999, single.p999);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, CounterSnapshotCarriesTheFullVocabulary) {
  Registry r;
  const auto snapshot = r.counter_snapshot();
  EXPECT_EQ(snapshot.size(), static_cast<std::size_t>(Counter::kCount_));
  for (const auto& [name, value] : snapshot) {
    EXPECT_EQ(value, 0u) << name;
    EXPECT_NE(name, "?");
  }
}

TEST(Registry, MergeAddsCountersAndBucketMergesHistograms) {
  Registry a, b;
  a.add(Counter::kCommits, 3);
  b.add(Counter::kCommits, 4);
  a.observe(Hist::kCommitLatencyUs, 100);
  b.observe(Hist::kCommitLatencyUs, 200);
  a.merge(b);
  EXPECT_EQ(a.counter(Counter::kCommits), 7u);
  EXPECT_EQ(a.histogram(Hist::kCommitLatencyUs).count(), 2u);
}

// ---------------------------------------------------------------------------
// Trace JSON well-formedness (minimal structural JSON parser — no library).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  std::vector<TraceEvent> events;
  events.push_back(span_event("block", "committed", 3, 7, 1000, 251000,
                              {"round", 9}, {"strength", 2}));
  events.push_back(instant_event("pacemaker", "timeout", 1, 5000,
                                 {"round", 4}));
  events.push_back(instant_event("dissem", "batch_packed", 0, 10));
  const std::string json = chrome_trace_json(events, /*n=*/4);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Trace, EmptyTraceIsStillValidJson) {
  const std::string json = chrome_trace_json({}, 0);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, RingEvictsOldestAndCountsEvictions) {
  FlightRecorder recorder(/*n=*/2, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.append(instant_event("pacemaker", "round_enter", 0,
                                  static_cast<SimTime>(i * 100)));
  }
  recorder.append(instant_event("pacemaker", "round_enter", 1, 50));
  EXPECT_EQ(recorder.size(0), 4u);
  EXPECT_EQ(recorder.evicted(0), 6u);
  EXPECT_EQ(recorder.size(1), 1u);
  EXPECT_EQ(recorder.evicted(1), 0u);

  // The ring keeps the most recent events; snapshot is globally ts-sorted.
  const std::vector<TraceEvent> snap = recorder.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  EXPECT_EQ(snap.front().ts, 50);
  EXPECT_EQ(snap.back().ts, 900);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].ts, snap[i].ts);
  }

  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("pacemaker/round_enter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-engine conformance through real scenario runs

harness::Scenario small_scenario(engine::Protocol protocol) {
  harness::Scenario s;
  s.protocol = protocol;
  s.n = 7;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(5);
  s.jitter_frac = 0;
  s.leader_processing = millis(10);
  s.streamlet_delta_bound = millis(50);
  s.verify_signatures = false;
  s.max_batch = 10;
  s.txn_size_bytes = 450;
  s.duration = seconds(12);
  s.warmup = seconds(1);
  s.tail = seconds(2);
  s.seed = 7;
  s.obs.enabled = true;
  return s;
}

TEST(ObsConformance, AllThreeEnginesExposeIdenticalMetricKeys) {
  std::vector<harness::ScenarioResult> results;
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    results.push_back(harness::run_scenario(small_scenario(protocol)));
  }
  auto keys = [](const harness::ScenarioResult& r) {
    std::vector<std::string> out;
    for (const auto& [name, value] : r.counters) out.push_back(name);
    return out;
  };
  ASSERT_FALSE(results[0].counters.empty());
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(keys(results[i]), keys(results[0]));
  }
  for (const harness::ScenarioResult& r : results) {
    // The run made progress and the shared-kernel instrumentation saw it.
    EXPECT_GT(r.counters.at("consensus.commits"), 0u);
    EXPECT_GT(r.counters.at("consensus.strong_commits"), 0u);
    EXPECT_GT(r.counters.at("consensus.proposals_sent"), 0u);
    EXPECT_GT(r.counters.at("consensus.votes_sent"), 0u);
    EXPECT_GT(r.counters.at("consensus.rounds_entered"), 0u);
    EXPECT_GT(r.counters.at("consensus.blocks_certified"), 0u);
    // Percentiles ride in every result (harness-side histograms).
    EXPECT_GT(r.commit_latency.count, 0u);
    EXPECT_GT(r.commit_latency.p50, 0);
    EXPECT_LE(r.commit_latency.p50, r.commit_latency.p99);
    // Satellite: decode accounting is surfaced, and clean runs drop nothing.
    EXPECT_EQ(r.decode_drops, 0u);
  }
}

TEST(ObsConformance, TracedRunWritesWellFormedChromeTraceJson) {
  harness::Scenario s = small_scenario(engine::Protocol::DiemBft);
  s.duration = seconds(5);
  s.trace_path = "obs_test_trace.json";  // cwd = the ctest build dir
  const harness::ScenarioResult r = harness::run_scenario(s);
  EXPECT_GT(r.summary.committed_blocks, 0u);

  std::ifstream in(s.trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_GT(json.size(), 2u);
  EXPECT_TRUE(JsonChecker(json).valid());
  // The block lifecycle made it into the trace.
  EXPECT_NE(json.find("\"committed\""), std::string::npos);
  EXPECT_NE(json.find("\"proposed\""), std::string::npos);
  std::remove(s.trace_path.c_str());
}

TEST(ObsConformance, FlowEventsAreWellFormedAndCounterTracksPresent) {
  // v2 trace contract, checked through a real parser (harness::JsonValue):
  // every 'f' flow end has exactly one matching 's' start with the same id,
  // start ids are unique, arrows never point backwards in time, and the
  // counter tracks (mempool depth, pacemaker round) made it into the
  // journal. The manifest rides as "otherData".
  harness::Scenario s = small_scenario(engine::Protocol::DiemBft);
  s.duration = seconds(5);
  s.trace_path = "obs_test_flow_trace.json";  // cwd = the ctest build dir
  const harness::ScenarioResult r = harness::run_scenario(s);
  EXPECT_GT(r.summary.committed_blocks, 0u);

  std::ifstream in(s.trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = harness::JsonValue::parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  std::remove(s.trace_path.c_str());

  // Manifest: seed/engine/n/config digest embedded in the trace itself.
  const harness::JsonValue* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->find("engine"), nullptr);
  EXPECT_EQ(other->find("engine")->string, "diembft");
  ASSERT_NE(other->find("seed"), nullptr);
  EXPECT_EQ(other->find("seed")->number, 7.0);
  ASSERT_NE(other->find("config_digest"), nullptr);

  const harness::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, harness::JsonValue::Type::Array);

  std::map<double, double> starts;  // flow id -> ts
  std::vector<std::pair<double, double>> finishes;
  bool saw_mempool_counter = false;
  bool saw_round_counter = false;
  for (const harness::JsonValue& event : events->array) {
    const harness::JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "s" || ph->string == "f") {
      const harness::JsonValue* id = event.find("id");
      ASSERT_NE(id, nullptr) << "flow event without id";
      const harness::JsonValue* ts = event.find("ts");
      ASSERT_NE(ts, nullptr);
      if (ph->string == "s") {
        // Start ids are unique (one arrow per delivered frame).
        EXPECT_TRUE(starts.emplace(id->number, ts->number).second)
            << "duplicate flow start id " << id->number;
      } else {
        finishes.emplace_back(id->number, ts->number);
        // The finish half binds to its enclosing slice.
        const harness::JsonValue* bp = event.find("bp");
        ASSERT_NE(bp, nullptr);
        EXPECT_EQ(bp->string, "e");
      }
    } else if (ph->string == "C") {
      const harness::JsonValue* name = event.find("name");
      ASSERT_NE(name, nullptr);
      if (name->string == "mempool_depth") saw_mempool_counter = true;
      if (name->string == "round") saw_round_counter = true;
    }
  }
  ASSERT_FALSE(starts.empty()) << "no flow events in a traced run";
  ASSERT_EQ(starts.size(), finishes.size());
  for (const auto& [id, ts] : finishes) {
    const auto it = starts.find(id);
    ASSERT_NE(it, starts.end()) << "flow finish without start, id " << id;
    EXPECT_LE(it->second, ts) << "flow arrow points backwards, id " << id;
  }
  EXPECT_TRUE(saw_mempool_counter);
  EXPECT_TRUE(saw_round_counter);
}

TEST(ObsConformance, WireDelayHistogramsCoverTheTraffic) {
  // Satellite: per-WireType transit/queueing distributions ride in every
  // observed run. Transit >= the 20ms uniform link floor; queueing =
  // transit - base is bounded by jitter (0 frac, 5ms cap here).
  harness::Scenario s = small_scenario(engine::Protocol::DiemBft);
  s.duration = seconds(5);
  const harness::ScenarioResult r = harness::run_scenario(s);
  ASSERT_FALSE(r.wire_delays.empty());
  ASSERT_TRUE(r.wire_delays.contains("proposal"));
  ASSERT_TRUE(r.wire_delays.contains("vote"));
  for (const auto& [type, delays] : r.wire_delays) {
    EXPECT_GT(delays.transit.count, 0u) << type;
    EXPECT_GE(delays.transit.min, millis(20)) << type;
    EXPECT_EQ(delays.transit.count, delays.queueing.count) << type;
    EXPECT_LE(delays.queueing.max, millis(5) + 1) << type;
  }
}

TEST(ObsConformance, AuditorViolationDumpsFlightRecorder) {
  // The Appendix-C strawman: naive indirect counting under the Fig. 9
  // coalition produces unsound claims; the first violation must snapshot
  // the flight recorder into the result.
  harness::Scenario s = small_scenario(engine::Protocol::DiemBft);
  s.counting = consensus::CountingRule::NaiveAllIndirect;
  s.byzantine_count = 2;
  s.byzantine.strategies = {adversary::Strategy::EquivocatingLeader,
                            adversary::Strategy::AmnesiaVoter};
  s.audit = true;
  const harness::ScenarioResult r = harness::run_scenario(s);
  EXPECT_GT(r.auditor_violations, 0u);
  ASSERT_FALSE(r.flight_dump.empty());
  // The dump leads with the violation verdict ("unsound claim" /
  // "conflicting commits", both carry the claimed x), then the timeline.
  EXPECT_NE(r.flight_dump.find("x="), std::string::npos)
      << r.flight_dump.substr(0, 200);
  EXPECT_NE(r.flight_dump.find("pacemaker/round_enter"), std::string::npos);
}

TEST(ObsConformance, DisabledObservabilityProducesNoOutputs) {
  harness::Scenario s = small_scenario(engine::Protocol::DiemBft);
  s.obs.enabled = false;
  s.duration = seconds(5);
  const harness::ScenarioResult r = harness::run_scenario(s);
  EXPECT_GT(r.summary.committed_blocks, 0u);
  EXPECT_TRUE(r.counters.empty());
  EXPECT_TRUE(r.flight_dump.empty());
  // Harness-side percentiles are NOT behind the switch.
  EXPECT_GT(r.commit_latency.count, 0u);
}

}  // namespace
}  // namespace sftbft::obs
