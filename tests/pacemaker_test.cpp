// Pacemaker: round entry, timers, timeout signalling, backoff.
#include <gtest/gtest.h>

#include <vector>

#include "sftbft/consensus/pacemaker.hpp"

namespace sftbft::consensus {
namespace {

struct Harness {
  sim::Scheduler sched;
  std::vector<Round> entered;
  std::vector<Round> timeouts;
  Pacemaker pacemaker;

  explicit Harness(PacemakerConfig config = {.base_timeout = millis(100)})
      : pacemaker(sched, config,
                  {.on_round_entered = [this](Round r) { entered.push_back(r); },
                   .on_local_timeout =
                       [this](Round r) { timeouts.push_back(r); }}) {}
};

TEST(Pacemaker, StartEntersRoundOne) {
  Harness h;
  h.pacemaker.start();
  EXPECT_EQ(h.pacemaker.current_round(), 1u);
  EXPECT_EQ(h.entered, (std::vector<Round>{1}));
}

TEST(Pacemaker, AdvanceOnlyForward) {
  Harness h;
  h.pacemaker.start();
  EXPECT_TRUE(h.pacemaker.advance_to(4));
  EXPECT_FALSE(h.pacemaker.advance_to(4));
  EXPECT_FALSE(h.pacemaker.advance_to(2));
  EXPECT_EQ(h.pacemaker.current_round(), 4u);
  EXPECT_EQ(h.entered, (std::vector<Round>{1, 4}));
}

TEST(Pacemaker, TimerFiresWithoutProgress) {
  Harness h;
  h.pacemaker.start();
  h.sched.run_for(millis(150));
  EXPECT_EQ(h.timeouts, (std::vector<Round>{1}));
  EXPECT_TRUE(h.pacemaker.timed_out());
  // The pacemaker stays in the round until a QC/TC advances it.
  EXPECT_EQ(h.pacemaker.current_round(), 1u);
}

TEST(Pacemaker, ProgressCancelsTimer) {
  Harness h;
  h.pacemaker.start();
  h.sched.run_for(millis(50));
  h.pacemaker.advance_to(2);  // fresh timer from t=50ms
  h.sched.run_for(millis(80));  // t=130: round-1 timer (would be 100) is dead
  EXPECT_TRUE(h.timeouts.empty());
  h.sched.run_for(millis(30));  // t=160: round-2 timer fires (50+100=150)
  EXPECT_EQ(h.timeouts, (std::vector<Round>{2}));
}

TEST(Pacemaker, BackoffGrowsTimerAcrossTimeouts) {
  Harness h({.base_timeout = millis(100), .backoff = 2.0});
  h.pacemaker.start();
  h.sched.run_for(millis(110));  // round 1 times out at 100
  ASSERT_EQ(h.timeouts.size(), 1u);
  h.pacemaker.advance_to(2);  // entered via TC after a timeout chain
  // Round 2's timer is doubled: fires at 110 + 200.
  h.sched.run_for(millis(150));
  EXPECT_EQ(h.timeouts.size(), 1u);
  h.sched.run_for(millis(100));
  EXPECT_EQ(h.timeouts.size(), 2u);
}

TEST(Pacemaker, ProgressResetsBackoff) {
  Harness h({.base_timeout = millis(100), .backoff = 2.0});
  h.pacemaker.start();
  h.sched.run_for(millis(110));  // timeout round 1
  h.pacemaker.advance_to(2);     // timeout-chain entry (backoff x2)
  h.sched.run_for(millis(50));
  h.pacemaker.advance_to(3);  // round 2 progressed without timing out: reset
  const SimTime entered_at = h.sched.now();
  h.sched.run_for(millis(120));
  ASSERT_EQ(h.timeouts.size(), 2u);  // round 3 timer back at base 100ms
  (void)entered_at;
}

TEST(Pacemaker, StopSilencesTimers) {
  Harness h;
  h.pacemaker.start();
  h.pacemaker.stop();
  h.sched.run_for(millis(500));
  EXPECT_TRUE(h.timeouts.empty());
  EXPECT_FALSE(h.pacemaker.advance_to(5));
}

}  // namespace
}  // namespace sftbft::consensus
