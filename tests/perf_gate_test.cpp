// harness::perf_gate: the JSON parser on artifact-shaped input, and the
// gate semantics — identical artifacts pass, a synthetic regression beyond
// the band trips kRegression, manifest drift trips kManifestMismatch, lost
// rows/sections are violations, and non-numeric baseline cells are skipped.
#include <gtest/gtest.h>

#include <string>

#include "sftbft/harness/perf_gate.hpp"

namespace sftbft::harness {
namespace {

// A miniature BENCH_throughput.json: same writer shape as
// bench::write_json_artifact, hand-shrunk to two engines.
std::string throughput_artifact(const char* diembft_rate,
                                const char* diembft_p50,
                                const char* config_digest) {
  std::string json = R"json({
  "bench": "tab_throughput",
  "seed": 42,
  "smoke": true,
  "manifests": {
    "diembft": {"seed":42,"engine":"diembft","n":31,"config_digest":")json";
  json += config_digest;
  json += R"json("}
  },
  "sections": {
    "throughput": [
      {"protocol": "diembft", "blocks/s": ")json";
  json += diembft_rate;
  json += R"json(", "commit p50 (s)": ")json";
  json += diembft_p50;
  json += R"json(", "commit p99 (s)": "0.500"},
      {"protocol": "hotstuff", "blocks/s": "10.1", "commit p50 (s)": "0.310", "commit p99 (s)": "0.520"}
    ]
  }
})json";
  return json;
}

JsonValue must_parse(const std::string& text) {
  const auto parsed = JsonValue::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.value_or(JsonValue{});
}

std::size_t count_kind(const GateReport& report, GateViolation::Kind kind) {
  std::size_t n = 0;
  for (const GateViolation& v : report.violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

TEST(JsonValue, ParsesTheArtifactShape) {
  const JsonValue doc = must_parse(throughput_artifact("9.8", "0.300", "ab"));
  ASSERT_EQ(doc.type, JsonValue::Type::Object);
  const JsonValue* bench = doc.find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->string, "tab_throughput");
  const JsonValue* seed = doc.find("seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->number, 42.0);
  const JsonValue* sections = doc.find("sections");
  ASSERT_NE(sections, nullptr);
  const JsonValue* rows = sections->find("throughput");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  const JsonValue* cell = rows->array[0].find("blocks/s");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->string, "9.8");
}

TEST(JsonValue, RejectsTrailingGarbageAndBadSyntax) {
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\": }").has_value());
  EXPECT_FALSE(JsonValue::parse("[1, 2,]").has_value());
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_TRUE(JsonValue::parse("{\"esc\": \"a\\\"b\\n\", \"neg\": -1.5e3, "
                               "\"t\": true, \"nil\": null}")
                  .has_value());
}

TEST(PerfGate, IdenticalArtifactsPass) {
  const JsonValue artifact =
      must_parse(throughput_artifact("9.8", "0.300", "deadbeef"));
  GateReport report;
  compare_artifact("BENCH_throughput.json", artifact, artifact,
                   default_rules("tab_throughput"), report);
  EXPECT_TRUE(report.ok()) << report.describe();
  // Three gated metrics x two engine rows.
  EXPECT_EQ(report.comparisons, 6u);
}

TEST(PerfGate, SyntheticRegressionTripsTheGate) {
  const JsonValue baseline =
      must_parse(throughput_artifact("9.8", "0.300", "deadbeef"));
  // Throughput halves and p50 doubles: both far outside the 10%/15% bands.
  const JsonValue candidate =
      must_parse(throughput_artifact("4.9", "0.600", "deadbeef"));
  GateReport report;
  compare_artifact("BENCH_throughput.json", baseline, candidate,
                   default_rules("tab_throughput"), report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(count_kind(report, GateViolation::Kind::kRegression), 2u)
      << report.describe();
  // The untouched hotstuff row and p99 column stay clean.
  EXPECT_EQ(report.violations.size(), 2u);
}

TEST(PerfGate, ImprovementsAndInBandDriftPass) {
  const JsonValue baseline =
      must_parse(throughput_artifact("9.8", "0.300", "deadbeef"));
  // blocks/s up (good direction), p50 +10% (inside the 15% band).
  const JsonValue candidate =
      must_parse(throughput_artifact("19.6", "0.330", "deadbeef"));
  GateReport report;
  compare_artifact("BENCH_throughput.json", baseline, candidate,
                   default_rules("tab_throughput"), report);
  EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(PerfGate, ManifestDriftIsAHardFailure) {
  const JsonValue baseline =
      must_parse(throughput_artifact("9.8", "0.300", "deadbeef"));
  const JsonValue candidate =
      must_parse(throughput_artifact("9.8", "0.300", "0ddba11"));
  GateReport report;
  compare_artifact("BENCH_throughput.json", baseline, candidate,
                   default_rules("tab_throughput"), report);
  ASSERT_EQ(count_kind(report, GateViolation::Kind::kManifestMismatch), 1u)
      << report.describe();
  // The refresh procedure is documented; the message must point at it.
  EXPECT_NE(report.violations[0].detail.find("refresh the baselines"),
            std::string::npos)
      << report.violations[0].detail;
}

TEST(PerfGate, LostRowsAndSectionsAreViolations) {
  const JsonValue baseline =
      must_parse(throughput_artifact("9.8", "0.300", "deadbeef"));
  const JsonValue no_row = must_parse(R"json({
    "bench": "tab_throughput", "seed": 42, "smoke": true,
    "manifests": {"diembft": {"seed":42,"engine":"diembft","n":31,"config_digest":"deadbeef"}},
    "sections": {"throughput": [
      {"protocol": "diembft", "blocks/s": "9.8", "commit p50 (s)": "0.300", "commit p99 (s)": "0.500"}
    ]}
  })json");
  GateReport row_report;
  compare_artifact("BENCH_throughput.json", baseline, no_row,
                   default_rules("tab_throughput"), row_report);
  // The hotstuff row vanished: one kMissingRow per gated metric.
  EXPECT_EQ(count_kind(row_report, GateViolation::Kind::kMissingRow), 3u)
      << row_report.describe();

  const JsonValue no_section = must_parse(R"json({
    "bench": "tab_throughput", "seed": 42, "smoke": true,
    "manifests": {"diembft": {"seed":42,"engine":"diembft","n":31,"config_digest":"deadbeef"}},
    "sections": {}
  })json");
  GateReport section_report;
  compare_artifact("BENCH_throughput.json", baseline, no_section,
                   default_rules("tab_throughput"), section_report);
  EXPECT_GE(count_kind(section_report, GateViolation::Kind::kMissingSection),
            1u)
      << section_report.describe();
}

TEST(PerfGate, NonNumericBaselineCellsAreSkipped) {
  // "--" is the writer's no-data cell (e.g. a latency level with no
  // coverage); a baseline gap must not gate the candidate.
  const JsonValue baseline =
      must_parse(throughput_artifact("--", "0.300", "deadbeef"));
  const JsonValue candidate =
      must_parse(throughput_artifact("4.9", "0.300", "deadbeef"));
  GateReport report;
  compare_artifact("BENCH_throughput.json", baseline, candidate,
                   default_rules("tab_throughput"), report);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.comparisons, 5u);  // one cell skipped
}

TEST(PerfGate, UnknownBenchHasNoRules) {
  EXPECT_TRUE(default_rules("tab_unknown").empty());
  EXPECT_FALSE(default_rules("tab_throughput").empty());
  EXPECT_FALSE(default_rules("tab_critical_path").empty());
}

}  // namespace
}  // namespace sftbft::harness
