// Crash-recovery: FaultSpec::CrashRestart replicas on both engines must
// rejoin via their durable ReplicaStore + peer block sync, never equivocate
// (the Ledger's conflict check throws on any conflicting commit inside a
// replica; cross-replica agreement is asserted explicitly), and keep every
// strong commit made before the crash (Theorem 2's "benign faults" now
// includes replicas that come back).
#include <gtest/gtest.h>

#include "sftbft/engine/deployment.hpp"
#include "sftbft/storage/mem_backend.hpp"
#include "sftbft/storage/replica_store.hpp"

namespace sftbft {
namespace {

using consensus::CoreMode;
using engine::Deployment;
using engine::DeploymentConfig;
using engine::FaultSpec;
using engine::Protocol;

DeploymentConfig small_cluster(Protocol protocol, std::uint32_t n,
                               std::uint64_t seed = 1) {
  DeploymentConfig config;
  config.protocol = protocol;
  config.n = n;
  config.chained.mode = CoreMode::SftMarker;
  config.chained.base_timeout = millis(500);
  config.chained.leader_processing = millis(5);
  config.chained.max_batch = 10;
  config.streamlet.delta_bound = millis(25);
  config.streamlet.sft = true;
  config.topology = net::Topology::uniform(n, millis(10));
  config.net.jitter = millis(2);
  config.workload.target_pool_size = 100;
  config.seed = seed;
  config.storage.snapshot_interval_blocks = 8;
  return config;
}

void expect_prefix_agreement(Deployment& cluster, std::uint32_t n) {
  const auto& ledger0 = cluster.ledger(0);
  for (ReplicaId id = 1; id < n; ++id) {
    const auto& ledger = cluster.ledger(id);
    const Height common =
        std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
    for (Height h = 1; h <= common; ++h) {
      ASSERT_TRUE(ledger0.is_committed(h));
      ASSERT_TRUE(ledger.is_committed(h));
      ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
          << "height " << h << " replica " << id;
    }
  }
}

TEST(Recovery, DiemBftCrashRestartRejoinsAndCatchesUp) {
  auto config = small_cluster(Protocol::DiemBft, 4);
  config.faults.resize(4);
  config.faults[2] = FaultSpec::crash_restart(seconds(3), seconds(6));
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(5));
  const auto down_blocks = cluster.ledger(2).committed_blocks();
  cluster.run_for(seconds(15));  // restart at 6s, then catch up

  // The recovered replica resumed committing far past its crash point.
  EXPECT_GT(cluster.ledger(2).committed_blocks(), down_blocks + 20);
  // It tracks the cluster tip closely (fully caught up).
  const Height tip0 = cluster.ledger(0).tip().value_or(0);
  const Height tip2 = cluster.ledger(2).tip().value_or(0);
  EXPECT_GT(tip2 + 5, tip0);
  expect_prefix_agreement(cluster, 4);
}

TEST(Recovery, StreamletCrashRestartRejoinsAndCatchesUp) {
  auto config = small_cluster(Protocol::Streamlet, 4);
  config.faults.resize(4);
  config.faults[2] = FaultSpec::crash_restart(seconds(3), seconds(6));
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(5));
  const auto down_blocks = cluster.ledger(2).committed_blocks();
  cluster.run_for(seconds(25));

  EXPECT_GT(cluster.ledger(2).committed_blocks(), down_blocks + 10);
  const Height tip0 = cluster.ledger(0).tip().value_or(0);
  const Height tip2 = cluster.ledger(2).tip().value_or(0);
  EXPECT_GT(tip2 + 8, tip0);
  expect_prefix_agreement(cluster, 4);
}

TEST(Recovery, StrongCommitsBeforeCrashSurviveRestart) {
  auto config = small_cluster(Protocol::DiemBft, 4);
  config.faults.resize(4);
  config.faults[1] = FaultSpec::crash_restart(seconds(4), seconds(7));
  Deployment cluster(config);

  cluster.start();
  cluster.run_for(seconds(4) - millis(1));  // just before the crash
  // Capture what replica 1 had strong-committed pre-crash.
  const auto pre_crash = cluster.ledger(1).snapshot();
  ASSERT_GT(pre_crash.size(), 5u);

  cluster.run_for(seconds(16) + millis(1));

  // Every pre-crash commit survives at its height, same block, with
  // strength never regressing (the ledger ratchet holds across restarts).
  const auto& ledger = cluster.ledger(1);
  for (const auto& entry : pre_crash) {
    ASSERT_TRUE(ledger.is_committed(entry.height)) << entry.height;
    EXPECT_EQ(ledger.at(entry.height).block_id, entry.block_id);
    EXPECT_GE(ledger.at(entry.height).strength, entry.strength);
  }
  expect_prefix_agreement(cluster, 4);
}

TEST(Recovery, BothEnginesRunChurnWithoutConflicts) {
  // A churn of crash/restart cycles: two replicas bounce, one at a time.
  for (const Protocol protocol : {Protocol::DiemBft, Protocol::Streamlet}) {
    auto config = small_cluster(protocol, 7, /*seed=*/9);
    config.faults.resize(7);
    config.faults[2] = FaultSpec::crash_restart(seconds(3), seconds(6));
    config.faults[5] = FaultSpec::crash_restart(seconds(9), seconds(12));
    Deployment cluster(config);
    cluster.start();
    // Any equivocation surfaces as chain::LedgerConflict (and fails here).
    ASSERT_NO_THROW(cluster.run_for(seconds(25)))
        << engine::protocol_name(protocol);
    EXPECT_GT(cluster.ledger(2).committed_blocks(), 10u);
    EXPECT_GT(cluster.ledger(5).committed_blocks(), 10u);
    expect_prefix_agreement(cluster, 7);
  }
}

TEST(Recovery, RestartWithoutStoreRefuses) {
  auto config = small_cluster(Protocol::DiemBft, 4);
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.store(0), nullptr);
  EXPECT_THROW(cluster.engine(0).restart(), std::logic_error);
}

// Satellite: the adversarial-replay regression. A recovered replica whose
// WAL says "voted in round r" but whose rebuilt tree has not re-learned the
// voted block yet must refuse to vote when the round-r proposal is replayed
// to it — equivocation would otherwise be trivial to induce.
TEST(Recovery, ReplayedProposalCannotInduceEquivocation) {
  auto config = small_cluster(Protocol::DiemBft, 4);
  config.persist_all = true;  // give everyone a store; no scheduled faults
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(3));

  // Crash replica 2 manually mid-run, then restart it from its store.
  cluster.engine(2).stop();
  cluster.store(2)->simulate_crash();
  cluster.run_for(seconds(2));

  auto& core = cluster.diem_core(2);
  const Round pre_crash_voted = core.safety().voted_round();
  ASSERT_GT(pre_crash_voted, 0u);

  cluster.engine(2).restart();
  // The durable fence must be up immediately — before any sync response.
  EXPECT_GE(core.safety().voted_round(), pre_crash_voted);

  // Adversarial replay: re-deliver the proposal of the replica's last voted
  // round (the legitimate leader's own broadcast, captured via its core).
  const Round target = core.safety().voted_round();
  for (ReplicaId leader = 0; leader < 4; ++leader) {
    for (const auto& proposal : cluster.diem_core(leader).sent_proposals()) {
      if (proposal.block.round != target) continue;
      const auto frontier_before = core.vote_history().frontier();
      core.on_proposal(proposal);
      // No new vote: the frontier is untouched and r_vote did not move.
      EXPECT_EQ(core.vote_history().frontier(), frontier_before);
      EXPECT_EQ(core.safety().voted_round(), target);
    }
  }
  // And the replica still recovers liveness afterwards.
  const auto blocks_before = cluster.ledger(2).committed_blocks();
  cluster.run_for(seconds(5));
  EXPECT_GT(cluster.ledger(2).committed_blocks(), blocks_before);
}

// Restart before the first sync/snapshot: the replica comes back as a
// born-again fresh node (empty durable state) and must still rejoin safely
// via sync from genesis.
TEST(Recovery, RestartWithEmptyStoreSyncsFromGenesis) {
  auto config = small_cluster(Protocol::DiemBft, 4);
  config.faults.resize(4);
  // Crash before anything could possibly be synced (t = 1ms).
  config.faults[3] = FaultSpec::crash_restart(millis(1), seconds(4));
  Deployment cluster(config);
  cluster.start();
  ASSERT_NO_THROW(cluster.run_for(seconds(12)));
  EXPECT_GT(cluster.ledger(3).committed_blocks(), 5u);
  expect_prefix_agreement(cluster, 4);
}

}  // namespace
}  // namespace sftbft
