// Deterministic RNG: reproducibility (the whole simulator depends on it),
// range correctness, and basic distribution sanity.
#include <gtest/gtest.h>

#include "sftbft/common/rng.hpp"

namespace sftbft {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedWorks) {
  Rng rng(0);
  EXPECT_NE(rng.next(), 0u);  // splitmix seeding avoids the all-zero state
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(9, 9), 9);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform(0, 9)] = true;
  for (bool hit : seen) EXPECT_TRUE(hit);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / kSamples, 250.0, 12.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng fork1 = a.fork();
  Rng b(99);
  Rng fork2 = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork1.next(), fork2.next());
  // Parent and child streams differ.
  Rng c(99);
  Rng child = c.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace sftbft
