// DiemBFT safety rules (Fig. 2): the voting rule as a parameterized truth
// table, locking-rule updates, and pacemaker interactions.
#include <gtest/gtest.h>

#include "sftbft/consensus/safety.hpp"

namespace sftbft::consensus {
namespace {

types::Block proposal(Round round, Round parent_round) {
  types::Block block;
  block.round = round;
  block.height = 1;
  block.qc.round = parent_round;  // the QC certifies the parent
  return block;
}

types::QuorumCert qc(Round round, Round parent_round) {
  types::QuorumCert cert;
  cert.round = round;
  cert.parent_round = parent_round;
  return cert;
}

// Truth table for Fig. 2's voting rule: vote iff round > r_vote AND
// parent.round >= r_lock (plus rounds strictly increase along the chain).
struct VoteCase {
  Round voted_round;
  Round locked_round;
  Round proposal_round;
  Round parent_round;
  bool expect_vote;
};

class VotingRule : public ::testing::TestWithParam<VoteCase> {};

TEST_P(VotingRule, TruthTable) {
  const VoteCase& c = GetParam();
  SafetyRules rules;
  rules.record_vote(c.voted_round);
  rules.observe_qc(qc(/*round=*/c.locked_round + 1, c.locked_round));
  ASSERT_EQ(rules.locked_round(), c.locked_round);
  EXPECT_EQ(rules.can_vote(proposal(c.proposal_round, c.parent_round)),
            c.expect_vote);
}

INSTANTIATE_TEST_SUITE_P(
    Table, VotingRule,
    ::testing::Values(
        // Fresh round, parent at lock: vote.
        VoteCase{.voted_round = 4, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 4, .expect_vote = true},
        // Already voted this round: no double vote.
        VoteCase{.voted_round = 5, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 4, .expect_vote = false},
        // Proposal from the past: never.
        VoteCase{.voted_round = 5, .locked_round = 3, .proposal_round = 4,
                 .parent_round = 3, .expect_vote = false},
        // Parent below the lock: refuse (the 2-chain lock protects commits).
        VoteCase{.voted_round = 4, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 2, .expect_vote = false},
        // Parent exactly at the lock: allowed (>=, not >).
        VoteCase{.voted_round = 4, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 3, .expect_vote = true},
        // Rounds must strictly increase along the chain.
        VoteCase{.voted_round = 0, .locked_round = 0, .proposal_round = 3,
                 .parent_round = 3, .expect_vote = false},
        // Jumping several rounds forward after timeouts is fine.
        VoteCase{.voted_round = 4, .locked_round = 2, .proposal_round = 9,
                 .parent_round = 2, .expect_vote = true},
        // Initial state: everything at 0, vote for round 1 on genesis.
        VoteCase{.voted_round = 0, .locked_round = 0, .proposal_round = 1,
                 .parent_round = 0, .expect_vote = true}));

TEST(SafetyRules, LockingRuleTakesParentRound) {
  SafetyRules rules;
  rules.observe_qc(qc(7, 6));
  EXPECT_EQ(rules.locked_round(), 6u);  // lock on parent of certified block
  rules.observe_qc(qc(5, 4));           // older QC cannot lower the lock
  EXPECT_EQ(rules.locked_round(), 6u);
}

TEST(SafetyRules, HighQcTracksHighestRound) {
  SafetyRules rules;
  rules.observe_qc(qc(3, 2));
  rules.observe_qc(qc(9, 8));
  rules.observe_qc(qc(5, 4));
  EXPECT_EQ(rules.high_qc().round, 9u);
}

TEST(SafetyRules, RecordVoteMonotone) {
  SafetyRules rules;
  rules.record_vote(5);
  rules.record_vote(3);  // lower: ignored
  EXPECT_EQ(rules.voted_round(), 5u);
}

TEST(SafetyRules, ForbidVotesBelowRound) {
  SafetyRules rules;
  rules.forbid_votes_below(10);  // entered round 10
  EXPECT_FALSE(rules.can_vote(proposal(9, 8)));
  EXPECT_TRUE(rules.can_vote(proposal(10, 9)));
  rules.forbid_votes_below(5);  // never lowers
  EXPECT_EQ(rules.voted_round(), 9u);
}

TEST(SafetyRules, InitHighQcSeedsGenesis) {
  SafetyRules rules;
  types::QuorumCert genesis;
  genesis.block_id.bytes[0] = 0x42;
  rules.init_high_qc(genesis);
  EXPECT_EQ(rules.high_qc().block_id.bytes[0], 0x42);
}

}  // namespace
}  // namespace sftbft::consensus
