// Chained-kernel safety rules (Fig. 2): the voting rule as a parameterized
// truth table (universal preconditions + the DiemBFT locking check),
// locking-rule updates, the HotStuff rule's divergence from DiemBFT's, and
// pacemaker interactions.
#include <gtest/gtest.h>

#include "sftbft/core/chained_core.hpp"
#include "sftbft/hotstuff/hotstuff.hpp"

namespace sftbft::core {
namespace {

types::Block proposal(Round round, Round parent_round) {
  types::Block block;
  block.round = round;
  block.height = 1;
  block.qc.round = parent_round;  // the QC certifies the parent
  return block;
}

types::QuorumCert qc(Round round, Round parent_round) {
  types::QuorumCert cert;
  cert.round = round;
  cert.parent_round = parent_round;
  return cert;
}

/// The full DiemBFT voting decision: universal SafetyRules preconditions
/// plus the Fig. 2 locking check (the kernel default rule).
bool diembft_vote(const SafetyRules& rules, const types::Block& block,
                  const chain::BlockTree& tree) {
  return rules.can_vote(block) && diembft_safe_to_vote(block, rules, tree);
}

// Truth table for Fig. 2's voting rule: vote iff round > r_vote AND
// parent.round >= r_lock (plus rounds strictly increase along the chain).
struct VoteCase {
  Round voted_round;
  Round locked_round;
  Round proposal_round;
  Round parent_round;
  bool expect_vote;
};

class VotingRule : public ::testing::TestWithParam<VoteCase> {};

TEST_P(VotingRule, TruthTable) {
  const VoteCase& c = GetParam();
  chain::BlockTree tree;
  SafetyRules rules;
  rules.record_vote(c.voted_round);
  rules.observe_qc(qc(/*round=*/c.locked_round + 1, c.locked_round));
  ASSERT_EQ(rules.locked_round(), c.locked_round);
  EXPECT_EQ(diembft_vote(rules, proposal(c.proposal_round, c.parent_round),
                         tree),
            c.expect_vote);
}

INSTANTIATE_TEST_SUITE_P(
    Table, VotingRule,
    ::testing::Values(
        // Fresh round, parent at lock: vote.
        VoteCase{.voted_round = 4, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 4, .expect_vote = true},
        // Already voted this round: no double vote.
        VoteCase{.voted_round = 5, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 4, .expect_vote = false},
        // Proposal from the past: never.
        VoteCase{.voted_round = 5, .locked_round = 3, .proposal_round = 4,
                 .parent_round = 3, .expect_vote = false},
        // Parent below the lock: refuse (the 2-chain lock protects commits).
        VoteCase{.voted_round = 4, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 2, .expect_vote = false},
        // Parent exactly at the lock: allowed (>=, not >).
        VoteCase{.voted_round = 4, .locked_round = 3, .proposal_round = 5,
                 .parent_round = 3, .expect_vote = true},
        // Rounds must strictly increase along the chain.
        VoteCase{.voted_round = 0, .locked_round = 0, .proposal_round = 3,
                 .parent_round = 3, .expect_vote = false},
        // Jumping several rounds forward after timeouts is fine.
        VoteCase{.voted_round = 4, .locked_round = 2, .proposal_round = 9,
                 .parent_round = 2, .expect_vote = true},
        // Initial state: everything at 0, vote for round 1 on genesis.
        VoteCase{.voted_round = 0, .locked_round = 0, .proposal_round = 1,
                 .parent_round = 0, .expect_vote = true}));

TEST(SafetyRules, LockingRuleTakesParentRound) {
  SafetyRules rules;
  rules.observe_qc(qc(7, 6));
  EXPECT_EQ(rules.locked_round(), 6u);  // lock on parent of certified block
  rules.observe_qc(qc(5, 4));           // older QC cannot lower the lock
  EXPECT_EQ(rules.locked_round(), 6u);
}

TEST(SafetyRules, LockingRuleRemembersLockedBlock) {
  SafetyRules rules;
  types::QuorumCert cert = qc(7, 6);
  cert.parent_id.bytes[0] = 0x6b;
  rules.observe_qc(cert);
  EXPECT_EQ(rules.locked_block().bytes[0], 0x6b);
  // restore_locked_round cannot resurrect the block id (not durable).
  SafetyRules restored;
  restored.restore_locked_round(6);
  EXPECT_EQ(restored.locked_block(), types::BlockId{});
}

TEST(SafetyRules, HighQcTracksHighestRound) {
  SafetyRules rules;
  rules.observe_qc(qc(3, 2));
  rules.observe_qc(qc(9, 8));
  rules.observe_qc(qc(5, 4));
  EXPECT_EQ(rules.high_qc().round, 9u);
}

TEST(SafetyRules, RecordVoteMonotone) {
  SafetyRules rules;
  rules.record_vote(5);
  rules.record_vote(3);  // lower: ignored
  EXPECT_EQ(rules.voted_round(), 5u);
}

TEST(SafetyRules, ForbidVotesBelowRound) {
  chain::BlockTree tree;
  SafetyRules rules;
  rules.forbid_votes_below(10);  // entered round 10
  EXPECT_FALSE(diembft_vote(rules, proposal(9, 8), tree));
  EXPECT_TRUE(diembft_vote(rules, proposal(10, 9), tree));
  rules.forbid_votes_below(5);  // never lowers
  EXPECT_EQ(rules.voted_round(), 9u);
}

TEST(SafetyRules, InitHighQcSeedsGenesis) {
  SafetyRules rules;
  types::QuorumCert genesis;
  genesis.block_id.bytes[0] = 0x42;
  rules.init_high_qc(genesis);
  EXPECT_EQ(rules.high_qc().block_id.bytes[0], 0x42);
}

// --- HotStuff's rule vs DiemBFT's (the one slot where they differ) --------

types::Block tree_child(chain::BlockTree& tree, const types::Block& parent,
                        Round round) {
  types::Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.seal();
  EXPECT_EQ(tree.insert(block), chain::BlockTree::InsertResult::Inserted);
  return block;
}

TEST(HotStuffRule, ExtendsLockedBranchBeatsRoundComparison) {
  // Build genesis -> a(r=1) -> b(r=2), plus a fork sibling s(r=3) off
  // genesis. Lock on block a (QC for b carries parent a, parent_round 1).
  chain::BlockTree tree;
  const types::Block genesis = tree.genesis();
  const types::Block a = tree_child(tree, genesis, 1);
  const types::Block b = tree_child(tree, a, 2);

  SafetyRules rules;
  types::QuorumCert lock_qc;
  lock_qc.block_id = b.id;
  lock_qc.round = b.round;
  lock_qc.parent_id = a.id;
  lock_qc.parent_round = a.round;
  rules.observe_qc(lock_qc);
  ASSERT_EQ(rules.locked_round(), 1u);
  ASSERT_EQ(rules.locked_block(), a.id);

  const core::ChainedRules hs = hotstuff::rules();

  // A proposal extending b (on the locked branch) whose embedded QC round
  // equals the lock: both rules accept.
  types::Block on_branch;
  on_branch.parent_id = b.id;
  on_branch.round = 4;
  on_branch.height = 3;
  on_branch.qc.block_id = b.id;
  on_branch.qc.round = b.round;
  on_branch.seal();
  EXPECT_TRUE(hs.safe_to_vote(on_branch, rules, tree));
  EXPECT_TRUE(diembft_safe_to_vote(on_branch, rules, tree));

  // A proposal extending the fork sibling with a stale (round-0) QC:
  // DiemBFT refuses (parent round below the lock); HotStuff's liveness
  // branch also refuses (QC does not outrank the lock) — but on the locked
  // branch itself a stale QC is still acceptable to HotStuff.
  const types::Block sibling = tree_child(tree, genesis, 3);
  types::Block off_branch;
  off_branch.parent_id = sibling.id;
  off_branch.round = 5;
  off_branch.height = 2;
  off_branch.qc.block_id = sibling.id;
  off_branch.qc.round = 1;  // does not outrank the lock
  off_branch.seal();
  EXPECT_FALSE(hs.safe_to_vote(off_branch, rules, tree));

  types::Block stale_on_branch;
  stale_on_branch.parent_id = a.id;  // the locked block itself
  stale_on_branch.round = 6;
  stale_on_branch.height = 2;
  stale_on_branch.qc.block_id = a.id;
  stale_on_branch.qc.round = 0;  // below the lock round
  stale_on_branch.seal();
  EXPECT_TRUE(hs.safe_to_vote(stale_on_branch, rules, tree));
  EXPECT_FALSE(diembft_safe_to_vote(stale_on_branch, rules, tree));

  // Off-branch but with a higher-ranked QC: HotStuff's liveness branch
  // accepts (the replica re-locks via that QC), DiemBFT accepts too (round
  // comparison) — the rules agree here.
  types::Block outranking;
  outranking.parent_id = sibling.id;
  outranking.round = 7;
  outranking.height = 2;
  outranking.qc.block_id = sibling.id;
  outranking.qc.round = 3;  // outranks lock round 1
  outranking.seal();
  EXPECT_TRUE(hs.safe_to_vote(outranking, rules, tree));
}

}  // namespace
}  // namespace sftbft::core
