// Discrete-event scheduler: ordering, FIFO tie-breaking, cancellation,
// bounded runs — the determinism substrate every experiment relies on.
#include <gtest/gtest.h>

#include <vector>

#include "sftbft/sim/scheduler.hpp"

namespace sftbft::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(300, [&] { order.push_back(3); });
  sched.schedule_at(100, [&] { order.push_back(1); });
  sched.schedule_at(200, [&] { order.push_back(2); });
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300);
}

TEST(Scheduler, FifoAmongEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.schedule_at(100, [&] {
    sched.schedule_after(50, [&] { fired_at = sched.now(); });
  });
  sched.run_until_idle();
  EXPECT_EQ(fired_at, 150);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const TimerId id = sched.schedule_at(10, [&] { fired = true; });
  sched.cancel(id);
  sched.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler sched;
  const TimerId id = sched.schedule_at(10, [] {});
  sched.run_until_idle();
  sched.cancel(id);  // must not crash or affect anything
  EXPECT_EQ(sched.events_processed(), 1u);
}

TEST(Scheduler, CancelInvalidIsNoop) {
  Scheduler sched;
  sched.cancel(kInvalidTimer);
  sched.cancel(12345);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(100, [&] { ++fired; });
  sched.schedule_at(200, [&] { ++fired; });
  sched.schedule_at(301, [&] { ++fired; });
  sched.run_until(300);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), 300);  // clock advances even without events
  sched.run_until_idle();
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, RunUntilExecutesEventsAtDeadline) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(300, [&] { fired = true; });
  sched.run_until(300);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunForAdvancesRelative) {
  Scheduler sched;
  sched.run_for(500);
  EXPECT_EQ(sched.now(), 500);
  sched.run_for(250);
  EXPECT_EQ(sched.now(), 750);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sched.schedule_after(1, recurse);
  };
  sched.schedule_at(0, recurse);
  sched.run_until_idle();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), 9);
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.run_one());
  sched.schedule_at(5, [] {});
  EXPECT_TRUE(sched.run_one());
  EXPECT_FALSE(sched.run_one());
}

TEST(Scheduler, MaxEventsBoundsRun) {
  Scheduler sched;
  // Self-perpetuating event chain; run_until_idle must stop at the bound.
  std::function<void()> loop = [&] { sched.schedule_after(1, loop); };
  sched.schedule_at(0, loop);
  sched.run_until_idle(100);
  EXPECT_EQ(sched.events_processed(), 100u);
}

}  // namespace
}  // namespace sftbft::sim
