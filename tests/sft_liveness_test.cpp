// Liveness theorems on full clusters.
//
// Theorem 2 (crash faults, marker votes): after GST, with c <= f benign
// faults and honest leaders in rounds r..r+2, the round-r block is
// (2f−c)-strong committed within n + 2 rounds.
//
// Theorem 3 (Byzantine faults, interval votes): with t <= f Byzantine
// faults, blocks reach (2f−t)-strong within n + 2 rounds — the Sec. 3.4
// generalization exists precisely because single-marker votes cannot
// guarantee this.
#include <gtest/gtest.h>

#include <map>

#include "sftbft/engine/deployment.hpp"

namespace sftbft {
namespace {

using consensus::CoreMode;
using engine::Deployment;
using engine::DeploymentConfig;
using engine::FaultSpec;

DeploymentConfig base_config(std::uint32_t n, CoreMode mode) {
  DeploymentConfig config;
  config.n = n;
  config.chained.mode = mode;
  config.chained.base_timeout = millis(400);
  config.chained.leader_processing = millis(5);
  config.chained.max_batch = 10;
  config.topology = net::Topology::uniform(n, millis(10));
  config.net.jitter = millis(2);
  config.seed = 5;
  return config;
}

/// Records, per block round, the first time replica 0 reached each strength.
struct StrengthLog {
  std::map<Round, std::map<std::uint32_t, SimTime>> by_round;
  std::map<Round, Round> committed_during_round;  // block round -> strength

  Deployment::CommitObserver observer() {
    return [this](ReplicaId replica, const types::Block& block,
                  std::uint32_t strength, SimTime now) {
      if (replica != 0) return;
      by_round[block.round].try_emplace(strength, now);
    };
  }

  /// Strongest level the round-r block ever reached.
  [[nodiscard]] std::uint32_t max_strength(Round round) const {
    auto it = by_round.find(round);
    if (it == by_round.end()) return 0;
    std::uint32_t best = 0;
    for (const auto& [strength, when] : it->second) {
      best = std::max(best, strength);
    }
    return best;
  }
};

// --- Theorem 2: crash faults, marker votes -------------------------------

TEST(Theorem2, TwoFStrongWithNoFaults) {
  // c = 0: every old-enough block must reach 2f-strong.
  const std::uint32_t n = 7, f = 2;
  StrengthLog log;
  Deployment cluster(base_config(n, CoreMode::SftMarker), log.observer());
  cluster.start();
  cluster.run_for(seconds(10));

  // Pick a mid-run block and check it reached 2f.
  EXPECT_EQ(log.max_strength(20), 2 * f);
}

TEST(Theorem2, TwoFMinusCStrongUnderCrashes) {
  // c = 2 = f crashes (adjacent rotation slots keep certifiable triples).
  const std::uint32_t n = 7, f = 2, c = 2;
  auto config = base_config(n, CoreMode::SftMarker);
  config.faults.resize(n);
  config.faults[1] = FaultSpec::crash_at_time(millis(500));
  config.faults[2] = FaultSpec::crash_at_time(millis(500));
  StrengthLog log;
  Deployment cluster(config, log.observer());
  cluster.start();
  cluster.run_for(seconds(30));

  // Find a block proposed well after the crashes and committed; Theorem 2
  // promises (2f - c)-strong for it. With c = f = 2 that is exactly the
  // regular f-strong level — and crucially NOT more: the crashed replicas
  // can never endorse.
  const auto& ledger = cluster.ledger(0);
  ASSERT_GT(ledger.committed_blocks(), 10u);
  bool checked = false;
  for (const auto& entry : ledger.snapshot()) {
    if (entry.created_at > seconds(2) && entry.created_at < seconds(20)) {
      EXPECT_GE(entry.strength, 2 * f - c) << "height " << entry.height;
      EXPECT_LE(entry.strength, n - c - f - 1);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Theorem2, StrengthReachedWithinNPlusTwoRounds) {
  // The bound is "within n + 2 rounds": with rounds ~35ms here, measure the
  // time from block creation to 2f-strong and convert via observed round
  // rate. We assert the loose-but-meaningful sim-time version: every
  // measured block strengthens within (n + 2) x (max observed round time).
  const std::uint32_t n = 7, f = 2;
  StrengthLog log;
  Deployment cluster(base_config(n, CoreMode::SftMarker), log.observer());
  cluster.start();
  cluster.run_for(seconds(10));

  // Round duration bound: timeout config (no timeouts fire in this run, so
  // every round is faster than base_timeout).
  const SimDuration round_bound = millis(400);
  for (Round round = 10; round <= 30; ++round) {
    auto it = log.by_round.find(round);
    if (it == log.by_round.end()) continue;  // not proposed (rotation gap)
    auto strong = it->second.find(2 * f);
    ASSERT_NE(strong, it->second.end()) << "round " << round;
    const SimTime regular = it->second.begin()->second;
    EXPECT_LE(strong->second - regular,
              static_cast<SimDuration>(n + 2) * round_bound);
  }
}

// --- Theorem 3: Byzantine (silent) faults, interval votes ----------------

TEST(Theorem3, IntervalVotesReachTwoFMinusT) {
  const std::uint32_t n = 10, f = 3, t = 2;
  auto config = base_config(n, CoreMode::SftIntervals);
  config.faults.resize(n);
  config.faults[4] = FaultSpec::silent();
  config.faults[5] = FaultSpec::silent();
  StrengthLog log;
  Deployment cluster(config, log.observer());
  cluster.start();
  cluster.run_for(seconds(40));

  const auto& ledger = cluster.ledger(0);
  ASSERT_GT(ledger.committed_blocks(), 15u);
  bool checked = false;
  for (const auto& entry : ledger.snapshot()) {
    if (entry.created_at > seconds(3) && entry.created_at < seconds(25)) {
      // (2f - t)-strong = 4-strong must be reached (silent replicas never
      // vote, so n - t = 8 endorsers max -> x <= 8 - f - 1 = 4 exactly).
      EXPECT_GE(entry.strength, 2 * f - t) << "height " << entry.height;
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Theorem3, SilentFaultsCapStrengthAtTwoFMinusT) {
  // Upper bound sanity: with t silent replicas the endorser ceiling is
  // n - t, so no block can exceed (n - t - f - 1)-strong.
  const std::uint32_t n = 10, f = 3, t = 2;
  auto config = base_config(n, CoreMode::SftIntervals);
  config.faults.resize(n);
  config.faults[4] = FaultSpec::silent();
  config.faults[5] = FaultSpec::silent();
  Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(20));
  for (const auto& entry : cluster.ledger(0).snapshot()) {
    EXPECT_LE(entry.strength, n - t - f - 1);
  }
}

TEST(Theorem3, MarkerModeAlsoLiveUnderForklessByzantine) {
  // With silent (non-equivocating) Byzantine replicas no forks arise, so
  // markers stay 0 and even the single-marker solution strengthens — the
  // Sec. 3.4 liveness gap needs forks. This documents that distinction.
  const std::uint32_t n = 10, f = 3, t = 2;
  auto config = base_config(n, CoreMode::SftMarker);
  config.faults.resize(n);
  config.faults[4] = FaultSpec::silent();
  config.faults[5] = FaultSpec::silent();
  StrengthLog log;
  Deployment cluster(config, log.observer());
  cluster.start();
  cluster.run_for(seconds(40));
  EXPECT_GE(log.max_strength(12), 2 * f - t);
}

TEST(Theorem3, ForkedHistoryMarkerVsIntervals) {
  // After voting on a fork, a marker vote endorses nothing below the fork
  // round, while an interval vote still endorses the common prefix — the
  // liveness difference Sec. 3.4 buys. Checked at the vote level in
  // vote_history_test; here we check end-to-end that interval clusters
  // sustain strengthening through timeout-induced forks.
  const std::uint32_t n = 7, f = 2;
  auto config = base_config(n, CoreMode::SftIntervals);
  config.faults.resize(n);
  config.faults[3] = FaultSpec::silent();  // its leadership rounds fork/skip
  StrengthLog log;
  Deployment cluster(config, log.observer());
  cluster.start();
  cluster.run_for(seconds(30));
  EXPECT_GE(log.max_strength(15), 2 * f - 1);
}

}  // namespace
}  // namespace sftbft
