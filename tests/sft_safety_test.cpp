// Safety audits on full clusters (Definition 1 / Theorem 1).
//
// A cross-replica auditor records every commit from every replica and
// verifies that no two replicas ever commit conflicting blocks at one
// height, at any strength — across honest, crashy, silent-Byzantine and
// stress (tiny-timeout, fork-heavy) schedules, and across all three modes.
#include <gtest/gtest.h>

#include <map>

#include "sftbft/engine/deployment.hpp"

namespace sftbft {
namespace {

using consensus::CoreMode;
using engine::Deployment;
using engine::DeploymentConfig;
using engine::FaultSpec;

/// Cross-replica commit auditor: one committed id per height, ever.
struct SafetyAuditor {
  std::map<Height, types::BlockId> committed;
  std::uint64_t violations = 0;
  std::uint64_t commits = 0;

  Deployment::CommitObserver observer() {
    return [this](ReplicaId, const types::Block& block, std::uint32_t,
                  SimTime) {
      ++commits;
      auto [it, inserted] = committed.try_emplace(block.height, block.id);
      if (!inserted && it->second != block.id) ++violations;
    };
  }
};

DeploymentConfig stress_config(std::uint32_t n, CoreMode mode,
                            std::uint64_t seed) {
  DeploymentConfig config;
  config.n = n;
  config.chained.mode = mode;
  // Deliberately tight timeout: rounds race the timer, forks and timeouts
  // are common — the adversarial-scheduling regime for safety.
  config.chained.base_timeout = millis(45);
  config.chained.leader_processing = millis(3);
  config.chained.max_batch = 5;
  config.topology = net::Topology::uniform(n, millis(10));
  config.net.jitter = millis(8);
  config.seed = seed;
  return config;
}

class SafetySweep
    : public ::testing::TestWithParam<std::tuple<CoreMode, std::uint64_t>> {};

TEST_P(SafetySweep, NoConflictingCommitsUnderStress) {
  const auto [mode, seed] = GetParam();
  SafetyAuditor auditor;
  Deployment cluster(stress_config(7, mode, seed), auditor.observer());
  cluster.start();
  // LedgerConflict (same-replica conflict) would throw out of run_for.
  cluster.run_for(seconds(20));
  EXPECT_EQ(auditor.violations, 0u);
  EXPECT_GT(auditor.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, SafetySweep,
    ::testing::Combine(::testing::Values(CoreMode::Plain, CoreMode::SftMarker,
                                         CoreMode::SftIntervals),
                       ::testing::Values(1u, 7u, 23u, 99u)));

TEST(Safety, HoldsWithCrashFaults) {
  SafetyAuditor auditor;
  auto config = stress_config(7, CoreMode::SftMarker, 3);
  config.faults.resize(7);
  config.faults[1] = FaultSpec::crash_at_time(seconds(2));
  config.faults[2] = FaultSpec::crash_at_time(seconds(4));
  Deployment cluster(config, auditor.observer());
  cluster.start();
  cluster.run_for(seconds(15));
  EXPECT_EQ(auditor.violations, 0u);
}

TEST(Safety, HoldsWithSilentByzantine) {
  SafetyAuditor auditor;
  auto config = stress_config(10, CoreMode::SftIntervals, 4);
  config.faults.resize(10);
  config.faults[4] = FaultSpec::silent();
  config.faults[5] = FaultSpec::silent();
  config.faults[6] = FaultSpec::silent();  // t = f = 3
  Deployment cluster(config, auditor.observer());
  cluster.start();
  cluster.run_for(seconds(15));
  EXPECT_EQ(auditor.violations, 0u);
}

TEST(Safety, HoldsUnderMessageLoss) {
  // Drop 5% of all messages (pre-GST-style chaos): liveness degrades but
  // commits must stay consistent.
  SafetyAuditor auditor;
  Deployment cluster(stress_config(7, CoreMode::SftMarker, 5),
                  auditor.observer());
  Rng drop_rng(77);
  cluster.set_link_filter(
      [&drop_rng](ReplicaId from, ReplicaId to) {
        return from == to || !drop_rng.chance(0.05);
      });
  cluster.start();
  cluster.run_for(seconds(20));
  EXPECT_EQ(auditor.violations, 0u);
}

TEST(Safety, StrengthMonotoneAndBounded) {
  // Per-replica: strength never exceeds 2f and ratchets monotonically.
  const std::uint32_t f = 2;
  std::map<std::pair<ReplicaId, Height>, std::uint32_t> last;
  Deployment cluster(
      stress_config(7, CoreMode::SftMarker, 11),
      [&last, f](ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime) {
        EXPECT_LE(strength, 2 * f);
        auto key = std::make_pair(replica, block.height);
        auto it = last.find(key);
        if (it != last.end()) EXPECT_GT(strength, it->second);
        last[key] = strength;
      });
  cluster.start();
  cluster.run_for(seconds(10));
  EXPECT_FALSE(last.empty());
}

TEST(Safety, CommitLogOverstatementsBlockVotes) {
  // Sec.-5 validation: a replica must refuse to vote for a proposal whose
  // commit log claims more strength than locally derivable. We check the
  // validation path directly through the cluster by confirming honest runs
  // never trigger the rejection (logs are consistent), via progress.
  SafetyAuditor auditor;
  auto config = stress_config(7, CoreMode::SftMarker, 13);
  config.chained.attach_commit_log = true;
  config.chained.verify_commit_log = true;
  Deployment cluster(config, auditor.observer());
  cluster.start();
  cluster.run_for(seconds(10));
  EXPECT_GT(cluster.ledger(0).committed_blocks(), 20u);
  EXPECT_EQ(auditor.violations, 0u);
}

}  // namespace
}  // namespace sftbft
