// SFT-Streamlet specifics (Appendix D.2/D.3): height-based markers,
// k-endorsement semantics, the strong commit rule on triples, and the
// Lemma 3 counting argument.
#include <gtest/gtest.h>

#include "sftbft/streamlet/streamlet.hpp"

namespace sftbft::streamlet {
namespace {

/// Drives a StreamletCore directly (no network) with hand-crafted messages.
class SftStreamletUnit : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 7;
  static constexpr std::uint32_t kF = 2;

  SftStreamletUnit()
      : registry_(std::make_shared<crypto::KeyRegistry>(kN, 3)),
        core_(make_config(), sched_, registry_, pool_, StreamletCore::Hooks{}) {}

  static StreamletConfig make_config() {
    StreamletConfig config;
    config.id = 0;
    config.n = kN;
    config.sft = true;
    config.echo = false;
    config.verify_signatures = true;
    return config;
  }

  types::Block make_block(const types::Block& parent, Round round) {
    types::Block block;
    block.parent_id = parent.id;
    block.round = round;
    block.height = parent.height + 1;
    block.proposer = static_cast<ReplicaId>(round % kN);
    block.qc.block_id = parent.id;
    block.qc.round = parent.round;
    block.seal();
    return block;
  }

  void deliver_proposal(const types::Block& block) {
    SProposal proposal;
    proposal.block = block;
    proposal.sig =
        registry_->signer_for(block.proposer).sign(proposal.signing_bytes());
    core_.on_proposal(proposal);
  }

  void deliver_vote(const types::Block& block, ReplicaId voter,
                    Height marker) {
    SVote vote;
    vote.block_id = block.id;
    vote.round = block.round;
    vote.height = block.height;
    vote.voter = voter;
    vote.marker = marker;
    vote.sig = registry_->signer_for(voter).sign(vote.signing_bytes());
    core_.on_vote(vote);
  }

  /// Full quorum of `count` truthful (marker 0) votes.
  void certify(const types::Block& block, std::uint32_t count) {
    for (ReplicaId voter = 0; voter < count; ++voter) {
      deliver_vote(block, voter, 0);
    }
  }

  sim::Scheduler sched_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  mempool::Mempool pool_;
  StreamletCore core_;
};

TEST_F(SftStreamletUnit, CertificationAtQuorum) {
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  deliver_proposal(b1);
  for (ReplicaId voter = 0; voter < 2 * kF; ++voter) {
    deliver_vote(b1, voter, 0);
  }
  EXPECT_FALSE(core_.is_certified(b1.id));  // 4 < 2f+1
  deliver_vote(b1, 2 * kF, 0);
  EXPECT_TRUE(core_.is_certified(b1.id));
  EXPECT_EQ(core_.longest_certified_tip().id, b1.id);
}

TEST_F(SftStreamletUnit, KEndorsementCountsRespectHeightMarkers) {
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  const types::Block b2 = make_block(b1, 2);
  deliver_proposal(b1);
  deliver_proposal(b2);
  // Voter 5 voted a conflicting height-1 block before: marker 1. Its vote
  // for b2 k-endorses b2 for k > 1, and b1 only for k > 1 as well — so for
  // k = 1 (committing b1) it does NOT count toward b1.
  deliver_vote(b2, 5, /*marker=*/1);
  EXPECT_EQ(core_.k_endorser_count(b2.id, /*k=*/2), 1u);
  EXPECT_EQ(core_.k_endorser_count(b1.id, /*k=*/1), 0u);
  EXPECT_EQ(core_.k_endorser_count(b1.id, /*k=*/2), 1u);
  // A direct vote always endorses its own block regardless of marker.
  deliver_vote(b1, 6, /*marker=*/3);
  EXPECT_EQ(core_.k_endorser_count(b1.id, /*k=*/1), 1u);
}

TEST_F(SftStreamletUnit, TripleCommitWithConsecutiveRounds) {
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  const types::Block b2 = make_block(b1, 2);
  const types::Block b3 = make_block(b2, 3);
  deliver_proposal(b1);
  deliver_proposal(b2);
  deliver_proposal(b3);
  certify(b1, kN);
  certify(b2, kN);
  EXPECT_FALSE(core_.ledger().is_committed(2));
  certify(b3, kN);
  // Triple (b1, b2, b3) with consecutive rounds commits the middle (b2) and
  // ancestors; all 7 voters endorse everything -> straight to 2f.
  EXPECT_TRUE(core_.ledger().is_committed(1));
  EXPECT_TRUE(core_.ledger().is_committed(2));
  EXPECT_EQ(core_.ledger().at(2).strength, 2 * kF);
  EXPECT_FALSE(core_.ledger().is_committed(3));  // tip of triple: not yet
}

TEST_F(SftStreamletUnit, NonConsecutiveRoundsDoNotCommit) {
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  const types::Block b2 = make_block(b1, 2);
  const types::Block b4 = make_block(b2, 4);  // gap
  deliver_proposal(b1);
  deliver_proposal(b2);
  deliver_proposal(b4);
  certify(b1, kN);
  certify(b2, kN);
  certify(b4, kN);
  EXPECT_FALSE(core_.ledger().is_committed(2));
}

TEST_F(SftStreamletUnit, StrengthLimitedByWeakestTripleMember) {
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  const types::Block b2 = make_block(b1, 2);
  const types::Block b3 = make_block(b2, 3);
  deliver_proposal(b1);
  deliver_proposal(b2);
  deliver_proposal(b3);
  certify(b1, kN);
  certify(b2, 2 * kF + 1);  // voters 0..4 only
  // b3's quorum: voters 0..4 clean, voters 5..6 with marker 2 (they voted a
  // conflicting height-2 block) — their votes do NOT 2-endorse b2.
  for (ReplicaId voter = 0; voter < 2 * kF + 1; ++voter) {
    deliver_vote(b3, voter, 0);
  }
  deliver_vote(b3, 5, /*marker=*/2);
  deliver_vote(b3, 6, /*marker=*/2);
  // Counts at k = 2: b1 = 7 (direct), b2 = 5, b3 = 7 -> min 5 -> x = f.
  ASSERT_TRUE(core_.ledger().is_committed(2));
  EXPECT_EQ(core_.ledger().at(2).strength, kF);
  // Direct votes for b2 itself always endorse it: strength ratchets to 2f.
  deliver_vote(b2, 5, /*marker=*/2);
  deliver_vote(b2, 6, /*marker=*/2);
  EXPECT_EQ(core_.k_endorser_count(b2.id, 2), kN);
  EXPECT_EQ(core_.ledger().at(2).strength, 2 * kF);
}

TEST_F(SftStreamletUnit, Lemma3MarkerExcludesConflictVoters) {
  // Lemma 3: voters of a conflicting height-k block (marker >= k) never
  // k-endorse. Build two height-2 siblings; voters of the fork then vote
  // down-chain with truthful marker 2 and must not count for k = 2.
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  const types::Block b2 = make_block(b1, 2);
  const types::Block fork2 = make_block(b1, 3);  // same height, round 3
  const types::Block b4 = make_block(b2, 4);
  deliver_proposal(b1);
  deliver_proposal(b2);
  deliver_proposal(fork2);
  deliver_proposal(b4);

  deliver_vote(b4, 5, /*marker=*/2);  // voted fork2 (height 2) earlier
  deliver_vote(b4, 6, /*marker=*/0);  // clean history
  // For k = 2 (committing the height-2 block) voter 5's marker (2) blocks
  // its endorsement of BOTH b2 and b1 — the k is the committed height, the
  // same for every block in the triple.
  EXPECT_EQ(core_.k_endorser_count(b2.id, /*k=*/2), 1u);  // only voter 6
  EXPECT_EQ(core_.k_endorser_count(b1.id, /*k=*/2), 1u);
  // For k = 3 (committing a height-3 block) the marker-2 vote counts again.
  EXPECT_EQ(core_.k_endorser_count(b1.id, /*k=*/3), 2u);
  EXPECT_EQ(core_.k_endorser_count(b2.id, /*k=*/3), 2u);
}

TEST_F(SftStreamletUnit, InvalidSignaturesIgnored) {
  const types::Block b1 = make_block(core_.tree().genesis(), 1);
  deliver_proposal(b1);
  SVote vote;
  vote.block_id = b1.id;
  vote.round = 1;
  vote.height = 1;
  vote.voter = 3;
  vote.marker = 0;
  vote.sig = registry_->signer_for(2).sign(vote.signing_bytes());  // wrong key
  core_.on_vote(vote);
  EXPECT_EQ(core_.k_endorser_count(b1.id, 1), 0u);
}

TEST_F(SftStreamletUnit, WrongLeaderProposalIgnored) {
  types::Block b1 = make_block(core_.tree().genesis(), 1);
  b1.proposer = 5;  // round 1's leader is 1 % 7 = 1
  b1.seal();
  SProposal proposal;
  proposal.block = b1;
  proposal.sig = registry_->signer_for(5).sign(proposal.signing_bytes());
  core_.on_proposal(proposal);
  EXPECT_FALSE(core_.tree().contains(b1.id));
}

}  // namespace
}  // namespace sftbft::streamlet
