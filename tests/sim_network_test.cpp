// SimNetwork: delivery timing, jitter bounds, GST semantics, partitions,
// stats — the partial-synchrony substrate.
#include <gtest/gtest.h>

#include <string>

#include "sftbft/net/sim_network.hpp"

namespace sftbft::net {
namespace {

using TestNetwork = SimNetwork<std::string>;

struct Delivery {
  ReplicaId from;
  std::string msg;
  SimTime at;
  std::size_t wire_size;
};

struct Harness {
  sim::Scheduler sched;
  std::vector<Delivery> deliveries;

  TestNetwork make(Topology topo, NetConfig config) {
    TestNetwork net(sched, std::move(topo), config, /*seed=*/1);
    for (ReplicaId id = 0; id < net.topology().size(); ++id) {
      net.set_handler(id, [this, id](ReplicaId from, const std::string& msg,
                                     std::size_t wire_size) {
        deliveries.push_back({from, msg + "@" + std::to_string(id),
                              sched.now(), wire_size});
      });
    }
    return net;
  }
};

TEST(SimNetwork, DeliversAtBaseDelay) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.send(0, 1, "test", 10, "hello");
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, millis(10));
  EXPECT_EQ(h.deliveries[0].msg, "hello@1");
}

TEST(SimNetwork, HandlersReceiveWireSize) {
  // Receivers see the sender-declared wire size (inbound bandwidth
  // accounting for the engine layer), on both network and self deliveries.
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.send(0, 1, "blk", 450'000, "big");
  net.send(2, 2, "vote", 120, "self");
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].wire_size, 120u);  // self-send, immediate
  EXPECT_EQ(h.deliveries[1].wire_size, 450'000u);
}

TEST(SimNetwork, SelfSendIsImmediate) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.send(2, 2, "test", 10, "self");
  // Delivered synchronously, no event needed.
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, 0);
}

TEST(SimNetwork, JitterStaysWithinBound) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.jitter = millis(5)});
  for (int i = 0; i < 50; ++i) net.send(0, 1, "test", 10, "m");
  h.sched.run_until_idle();
  for (const Delivery& d : h.deliveries) {
    EXPECT_GE(d.at, millis(10));
    EXPECT_LE(d.at, millis(15));
  }
}

TEST(SimNetwork, ProportionalJitterScalesWithDistance) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(100)),
                    {.jitter = 0, .jitter_frac = 0.5});
  for (int i = 0; i < 50; ++i) net.send(0, 1, "test", 10, "m");
  h.sched.run_until_idle();
  SimTime max_seen = 0;
  for (const Delivery& d : h.deliveries) {
    EXPECT_GE(d.at, millis(100));
    EXPECT_LE(d.at, millis(150));
    max_seen = std::max(max_seen, d.at);
  }
  EXPECT_GT(max_seen, millis(110));  // jitter actually applied
}

TEST(SimNetwork, BandwidthAddsTransferTime) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)),
                    {.bandwidth_bytes_per_sec = 1'000'000});
  net.send(0, 1, "blk", 500'000, "big");  // 0.5s at 1 MB/s
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, millis(10) + millis(500));
}

TEST(SimNetwork, GstDelaysEarlyMessages) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.gst = millis(100)});
  net.send(0, 1, "test", 10, "early");  // sent at t=0, before GST
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  // Arrives no earlier than GST + base delay.
  EXPECT_EQ(h.deliveries[0].at, millis(110));
}

TEST(SimNetwork, MulticastReachesAll) {
  Harness h;
  auto net = h.make(Topology::uniform(4, millis(10)), {});
  net.multicast(1, "prop", 10, "block", /*include_self=*/true);
  h.sched.run_until_idle();
  EXPECT_EQ(h.deliveries.size(), 4u);
  net.multicast(1, "prop", 10, "block2", /*include_self=*/false);
  h.sched.run_until_idle();
  EXPECT_EQ(h.deliveries.size(), 7u);
}

TEST(SimNetwork, DisconnectDropsInbound) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.disconnect(1);
  EXPECT_FALSE(net.connected(1));
  net.multicast(0, "prop", 10, "block");
  h.sched.run_until_idle();
  EXPECT_EQ(h.deliveries.size(), 2u);  // replicas 0 and 2 only
}

TEST(SimNetwork, LinkFilterDropsSelectively) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.set_link_filter([](ReplicaId from, ReplicaId to) {
    return !(from == 0 && to == 2);  // partition one direction
  });
  net.multicast(0, "prop", 10, "block", /*include_self=*/false);
  net.send(2, 0, "vote", 10, "reply");  // reverse direction still works
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].msg, "block@1");
  EXPECT_EQ(h.deliveries[1].msg, "reply@0");
}

TEST(SimNetwork, StatsCountEverything) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.multicast(0, "proposal", 450'000, "b");
  net.send(1, 0, "vote", 120, "v");
  EXPECT_EQ(net.stats().total_count(), 4u);
  EXPECT_EQ(net.stats().for_type("proposal").count, 3u);
  EXPECT_EQ(net.stats().for_type("proposal").bytes, 3u * 450'000);
  EXPECT_EQ(net.stats().for_type("vote").count, 1u);
  EXPECT_EQ(net.stats().for_type("nothing").count, 0u);
}

TEST(SimNetwork, StragglerDelaysApply) {
  Harness h;
  Topology topo = Topology::uniform(3, millis(10));
  topo.set_extra_delay(1, millis(20));
  auto net = h.make(std::move(topo), {});
  net.send(0, 1, "test", 10, "to-straggler");
  net.send(0, 2, "test", 10, "to-normal");
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].at, millis(10));  // normal first
  EXPECT_EQ(h.deliveries[0].msg, "to-normal@2");
  EXPECT_EQ(h.deliveries[1].at, millis(30));
}

}  // namespace
}  // namespace sftbft::net
