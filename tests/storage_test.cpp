// The storage subsystem: backends (durability + torn-write semantics), the
// CRC-framed WAL (truncated tails, corrupt frames, double recovery, a
// randomized append/crash loop), and the ReplicaStore envelope round-trip
// with snapshot truncation.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "sftbft/common/codec.hpp"
#include "sftbft/storage/file_backend.hpp"
#include "sftbft/storage/mem_backend.hpp"
#include "sftbft/storage/replica_store.hpp"
#include "sftbft/storage/wal.hpp"

namespace sftbft::storage {
namespace {

Bytes bytes_of(std::initializer_list<std::uint8_t> list) { return Bytes(list); }

Bytes record_of(std::uint8_t tag, std::size_t size) {
  Bytes record(size, tag);
  return record;
}

// ---------------------------------------------------------------- MemBackend

TEST(MemBackend, AppendIsStagedUntilSync) {
  MemBackend backend(1);
  backend.append("wal", bytes_of({1, 2, 3}));
  EXPECT_EQ(backend.read("wal").size(), 3u);   // readable pre-sync...
  EXPECT_EQ(backend.durable("wal").size(), 0u);  // ...but not durable
  backend.sync("wal");
  EXPECT_EQ(backend.durable("wal").size(), 3u);
  EXPECT_EQ(backend.staged_bytes("wal"), 0u);
}

TEST(MemBackend, CrashKeepsTornPrefixOfUnsyncedTail) {
  MemBackend backend(7);
  backend.append("wal", bytes_of({1, 2}));
  backend.sync("wal");
  backend.append("wal", Bytes(100, 0xEE));
  backend.simulate_crash();
  const Bytes durable = backend.durable("wal");
  // Synced bytes always survive; the unsynced tail survives as a prefix of
  // length in [0, 100] chosen by the seeded RNG.
  ASSERT_GE(durable.size(), 2u);
  ASSERT_LE(durable.size(), 102u);
  EXPECT_EQ(durable[0], 1);
  EXPECT_EQ(durable[1], 2);
  for (std::size_t i = 2; i < durable.size(); ++i) {
    EXPECT_EQ(durable[i], 0xEE);
  }
}

TEST(MemBackend, CrashDropsStagedAtomicReplaceWholesale) {
  MemBackend backend(1);
  backend.write_atomic("snap", bytes_of({1}));
  backend.sync("snap");
  backend.write_atomic("snap", bytes_of({2, 2}));
  backend.simulate_crash();
  EXPECT_EQ(backend.read("snap"), bytes_of({1}));  // old contents, in full
}

// --------------------------------------------------------------- FileBackend

TEST(FileBackend, RoundTripAppendAtomicTruncate) {
  const auto root = std::filesystem::temp_directory_path() /
                    "sftbft_storage_test" /
                    std::to_string(::getpid());
  std::filesystem::remove_all(root);
  FileBackend backend(root);

  backend.append("r0/wal", bytes_of({1, 2, 3}));
  backend.append("r0/wal", bytes_of({4}));
  backend.sync("r0/wal");
  EXPECT_EQ(backend.read("r0/wal"), bytes_of({1, 2, 3, 4}));

  backend.write_atomic("r0/snapshot", bytes_of({9, 9}));
  backend.sync("r0/snapshot");
  EXPECT_EQ(backend.read("r0/snapshot"), bytes_of({9, 9}));
  backend.write_atomic("r0/snapshot", bytes_of({7}));
  EXPECT_EQ(backend.read("r0/snapshot"), bytes_of({7}));

  backend.truncate("r0/wal", 2);
  EXPECT_EQ(backend.read("r0/wal"), bytes_of({1, 2}));

  EXPECT_TRUE(backend.exists("r0/wal"));
  backend.remove("r0/wal");
  EXPECT_FALSE(backend.exists("r0/wal"));
  std::filesystem::remove_all(root);
}

TEST(FileBackend, WalReplaysAcrossBackendInstances) {
  const auto root = std::filesystem::temp_directory_path() /
                    "sftbft_storage_test_wal" /
                    std::to_string(::getpid());
  std::filesystem::remove_all(root);
  {
    FileBackend backend(root);
    Wal wal(backend, "wal");
    wal.append(bytes_of({1, 2, 3}));
    wal.append(bytes_of({4, 5}));
    wal.sync();
  }
  {
    FileBackend backend(root);  // a "new process"
    Wal wal(backend, "wal");
    const auto replayed = wal.replay();
    EXPECT_FALSE(replayed.torn_tail);
    EXPECT_FALSE(replayed.corrupt);
    ASSERT_EQ(replayed.records.size(), 2u);
    EXPECT_EQ(replayed.records[0], bytes_of({1, 2, 3}));
    EXPECT_EQ(replayed.records[1], bytes_of({4, 5}));
  }
  std::filesystem::remove_all(root);
}

// ----------------------------------------------------------------------- Wal

class WalTest : public ::testing::Test {
 protected:
  MemBackend backend_{42};
  Wal wal_{backend_, "wal"};
};

TEST_F(WalTest, AppendSyncReplayRoundTrip) {
  wal_.append(bytes_of({10, 20}));
  wal_.append(Bytes{});  // empty records are legal
  wal_.append(bytes_of({30}));
  wal_.sync();
  const auto replayed = wal_.replay();
  EXPECT_FALSE(replayed.torn_tail);
  EXPECT_FALSE(replayed.corrupt);
  ASSERT_EQ(replayed.records.size(), 3u);
  EXPECT_EQ(replayed.records[0], bytes_of({10, 20}));
  EXPECT_TRUE(replayed.records[1].empty());
  EXPECT_EQ(replayed.records[2], bytes_of({30}));
}

TEST_F(WalTest, TruncatedTailRecordIsDetectedAndRepaired) {
  wal_.append(bytes_of({1, 1, 1}));
  wal_.append(bytes_of({2, 2, 2, 2}));
  wal_.sync();
  // Chop into the middle of the second frame (header is 8 bytes + payload).
  backend_.chop("wal", 2);
  auto replayed = wal_.replay();
  EXPECT_TRUE(replayed.torn_tail);
  EXPECT_FALSE(replayed.corrupt);
  ASSERT_EQ(replayed.records.size(), 1u);
  EXPECT_EQ(replayed.records[0], bytes_of({1, 1, 1}));

  // Documented state after repair: the log is exactly the intact prefix and
  // accepts appends again.
  wal_.repair_tail(replayed);
  wal_.append(bytes_of({3}));
  wal_.sync();
  replayed = wal_.replay();
  EXPECT_FALSE(replayed.torn_tail);
  ASSERT_EQ(replayed.records.size(), 2u);
  EXPECT_EQ(replayed.records[1], bytes_of({3}));
}

TEST_F(WalTest, CorruptCrcMidLogStopsReplayCleanly) {
  wal_.append(bytes_of({1, 1}));
  wal_.append(bytes_of({2, 2}));
  wal_.append(bytes_of({3, 3}));
  wal_.sync();
  // Flip one payload byte of the *middle* record: frame 1 spans
  // [0, 10), frame 2's payload starts at 10 + 8.
  backend_.poke("wal", 10 + 8, 0xFF);
  const auto replayed = wal_.replay();
  EXPECT_TRUE(replayed.corrupt);
  EXPECT_FALSE(replayed.torn_tail);
  // Only the prefix before the corruption survives; framing past a corrupt
  // record is untrusted by design.
  ASSERT_EQ(replayed.records.size(), 1u);
  EXPECT_EQ(replayed.records[0], bytes_of({1, 1}));
  EXPECT_EQ(replayed.valid_bytes, 10u);
}

TEST_F(WalTest, DoubleRecoveryLandsInDocumentedState) {
  // recover -> write -> crash -> recover: every synced record must survive
  // both recoveries; the unsynced tail may partially survive as whole
  // records only.
  wal_.append(bytes_of({1}));
  wal_.sync();
  backend_.simulate_crash();  // nothing staged: no-op

  auto first = wal_.replay();
  ASSERT_EQ(first.records.size(), 1u);
  wal_.repair_tail(first);

  wal_.append(bytes_of({2}));
  wal_.sync();
  wal_.append(bytes_of({3}));  // never synced
  backend_.simulate_crash();   // may tear the {3} frame

  const auto second = wal_.replay();
  EXPECT_FALSE(second.corrupt);
  ASSERT_GE(second.records.size(), 2u);
  ASSERT_LE(second.records.size(), 3u);
  EXPECT_EQ(second.records[0], bytes_of({1}));
  EXPECT_EQ(second.records[1], bytes_of({2}));
  if (second.records.size() == 3) {
    EXPECT_EQ(second.records[2], bytes_of({3}));  // tail survived intact
  }
}

TEST_F(WalTest, ResetReplacesLogDurably) {
  wal_.append(bytes_of({1}));
  wal_.sync();
  wal_.reset({bytes_of({9, 9})});
  const auto replayed = wal_.replay();
  ASSERT_EQ(replayed.records.size(), 1u);
  EXPECT_EQ(replayed.records[0], bytes_of({9, 9}));
  EXPECT_EQ(backend_.staged_bytes("wal"), 0u);  // durable, not staged
}

TEST_F(WalTest, FuzzRandomizedAppendCrashLoop) {
  // Deterministic fuzz: random-size appends with random sync points and a
  // crash per round. Invariant: replay yields a prefix of the appended
  // sequence (all synced records, maybe some unsynced tail records),
  // byte-identical, with no corruption ever reported.
  Rng rng(0xF022);
  std::vector<Bytes> appended;
  std::size_t synced_count = 0;
  for (int round = 0; round < 200; ++round) {
    const int appends = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < appends; ++i) {
      const auto size = static_cast<std::size_t>(rng.uniform(0, 64));
      Bytes record = record_of(static_cast<std::uint8_t>(rng.uniform(0, 255)),
                               size);
      wal_.append(record);
      appended.push_back(std::move(record));
      if (rng.chance(0.5)) {
        wal_.sync();
        synced_count = appended.size();
      }
    }
    backend_.simulate_crash();

    const auto replayed = wal_.replay();
    ASSERT_FALSE(replayed.corrupt) << "round " << round;
    ASSERT_GE(replayed.records.size(), synced_count) << "round " << round;
    ASSERT_LE(replayed.records.size(), appended.size()) << "round " << round;
    for (std::size_t i = 0; i < replayed.records.size(); ++i) {
      ASSERT_EQ(replayed.records[i], appended[i]) << "round " << round;
    }
    // Converge the model: recovery repairs the tail, so the log now holds
    // exactly the replayed records.
    wal_.repair_tail(replayed);
    appended.resize(replayed.records.size());
    synced_count = appended.size();
  }
}

// -------------------------------------------------------------- ReplicaStore

types::QuorumCert qc_at_round(Round round) {
  types::QuorumCert qc;
  qc.round = round;
  qc.block_id.bytes[0] = static_cast<std::uint8_t>(round);
  qc.parent_round = round > 0 ? round - 1 : 0;
  return qc;
}

TEST(ReplicaStore, WalOnlyRecovery) {
  MemBackend backend(5);
  ReplicaStore store(backend, 0);
  store.record_vote({types::BlockId{}, 3, 0});  // timeout record
  types::BlockId voted;
  voted.bytes[0] = 0xAB;
  store.record_vote({voted, 5, 4});
  store.record_high_qc(qc_at_round(4));
  store.record_high_qc(qc_at_round(6));
  types::TimeoutCert tc;
  tc.round = 5;
  store.record_high_tc(tc);

  const RecoveredState state = store.recover();
  EXPECT_TRUE(state.found);
  EXPECT_EQ(state.voted_round, 5u);
  ASSERT_EQ(state.frontier.size(), 1u);  // the timeout record adds no entry
  EXPECT_EQ(state.frontier[0].block_id, voted);
  EXPECT_EQ(state.frontier[0].height, 4u);
  EXPECT_EQ(state.high_qc.round, 6u);
  // The lock watermark covers *every* recorded QC's parent round, not just
  // the highest QC's (qc_at_round(6) has parent_round 5).
  EXPECT_EQ(state.locked_round, 5u);
  ASSERT_TRUE(state.high_tc.has_value());
  EXPECT_EQ(state.high_tc->round, 5u);
  EXPECT_FALSE(state.tip.has_value());  // no snapshot yet
  EXPECT_EQ(state.wal_records, 5u);
}

TEST(ReplicaStore, LockedRoundSurvivesALowerParentHighQc) {
  // A timeout-borne high QC can have a *lower* parent round than an earlier
  // chain QC; the recovered lock must not regress with it (Fig. 2 locking
  // rule across restarts).
  MemBackend backend(5);
  ReplicaStore store(backend, 0);
  types::QuorumCert chain_qc = qc_at_round(5);
  chain_qc.parent_round = 4;
  store.record_high_qc(chain_qc);
  types::QuorumCert timeout_qc = qc_at_round(7);
  timeout_qc.parent_round = 3;  // certified after a fork/timeout mess
  store.record_high_qc(timeout_qc);

  const RecoveredState state = store.recover();
  EXPECT_EQ(state.high_qc.round, 7u);
  EXPECT_EQ(state.locked_round, 4u);  // from chain_qc, not high_qc
}

TEST(ReplicaStore, SnapshotTruncatesWalAndMergesOnRecovery) {
  MemBackend backend(5);
  ReplicaStore store(backend, 2);
  store.record_vote({types::BlockId{}, 1, 0});

  types::Block tip;
  tip.round = 9;
  tip.height = 4;
  tip.seal();
  chain::Ledger::Entry entry;
  entry.block_id = tip.id;
  entry.round = 9;
  entry.height = 4;
  entry.strength = 2;
  Envelope envelope;
  envelope.voted_round = 9;
  envelope.locked_round = 8;
  envelope.high_qc = qc_at_round(9);
  types::TimeoutCert snap_tc;
  snap_tc.round = 7;
  envelope.high_tc = snap_tc;
  store.write_snapshot(tip, {entry}, envelope);

  // The WAL restarted empty; records after the snapshot merge on top.
  EXPECT_EQ(Wal(backend, "r2/wal").replay().records.size(), 0u);
  types::BlockId later;
  later.bytes[0] = 0xCD;
  store.record_vote({later, 11, 5});

  const RecoveredState state = store.recover();
  ASSERT_TRUE(state.found);
  EXPECT_EQ(state.voted_round, 11u);  // WAL wins over snapshot (max)
  EXPECT_EQ(state.locked_round, 8u);
  ASSERT_TRUE(state.high_tc.has_value());  // TC survives WAL truncation
  EXPECT_EQ(state.high_tc->round, 7u);
  ASSERT_TRUE(state.tip.has_value());
  EXPECT_EQ(state.tip->id, tip.id);
  ASSERT_EQ(state.ledger.size(), 1u);
  EXPECT_EQ(state.ledger[0], entry);
  ASSERT_EQ(state.frontier.size(), 1u);
  EXPECT_EQ(state.frontier[0].block_id, later);
}

TEST(ReplicaStore, VoteRecordsSyncImmediatelyDespiteBatching) {
  // WAL-before-wire: even with watermark batching (wal_sync_every > 1), a
  // vote record must be durable the moment record_vote returns — a crash
  // right after sending the vote must never forget it (equivocation fence).
  MemBackend backend(3, MemBackend::Config{.torn_tail = false});
  ReplicaStore store(backend, 0, StoreConfig{.wal_sync_every = 100});
  store.record_high_qc(qc_at_round(3));  // staged (batched watermark)
  types::BlockId voted;
  voted.bytes[0] = 0x11;
  store.record_vote({voted, 4, 2});  // must flush everything staged so far
  store.simulate_crash();
  const RecoveredState state = store.recover();
  EXPECT_EQ(state.voted_round, 4u);
  EXPECT_EQ(state.high_qc.round, 3u);  // flushed along with the vote
}

TEST(ReplicaStore, SnapshotDueFollowsCadence) {
  MemBackend backend(1);
  ReplicaStore store(backend, 0, StoreConfig{.snapshot_interval_blocks = 10});
  EXPECT_FALSE(store.snapshot_due(9));
  EXPECT_TRUE(store.snapshot_due(10));
  ReplicaStore never(backend, 1, StoreConfig{.snapshot_interval_blocks = 0});
  EXPECT_FALSE(never.snapshot_due(1'000'000));
}

TEST(ReplicaStore, CrashBeforeAnySyncRecoversEmpty) {
  // Watermark records (QCs) honour the sync batching — staged-only records
  // are gone after a crash and recovery reports an empty store. (Vote
  // records are exempt from batching; see the test below.)
  MemBackend backend(3, MemBackend::Config{.torn_tail = false});
  ReplicaStore store(backend, 0, StoreConfig{.wal_sync_every = 100});
  store.record_high_qc(qc_at_round(7));  // staged, never synced
  store.simulate_crash();
  const RecoveredState state = store.recover();
  EXPECT_FALSE(state.found);
  EXPECT_EQ(state.high_qc.round, 0u);
}

TEST(ReplicaStore, TornWalTailIsRepairedOnRecover) {
  MemBackend backend(11);
  ReplicaStore store(backend, 0);
  store.record_vote({types::BlockId{}, 2, 0});
  // Tear the durable tail directly (media fault past the last sync).
  backend.chop("r0/wal", 3);
  const RecoveredState state = store.recover();
  EXPECT_TRUE(state.wal_torn_tail);
  EXPECT_FALSE(state.found);
  // Post-repair, the store accepts and recovers new records.
  store.record_vote({types::BlockId{}, 4, 0});
  EXPECT_EQ(store.recover().voted_round, 4u);
}

}  // namespace
}  // namespace sftbft::storage
