// Streamlet (Appendix D.1): lock-step rounds, longest-certified-chain
// voting, the consecutive-round commit rule, echo, and cross-replica
// agreement.
#include <gtest/gtest.h>

#include "sftbft/engine/deployment.hpp"

namespace sftbft::streamlet {
namespace {

engine::DeploymentConfig small_config(std::uint32_t n, bool sft,
                                      std::uint64_t seed = 1) {
  engine::DeploymentConfig config;
  config.protocol = engine::Protocol::Streamlet;
  config.n = n;
  config.streamlet.delta_bound = millis(30);
  config.streamlet.sft = sft;
  config.streamlet.echo = true;
  config.streamlet.max_batch = 5;
  config.topology = net::Topology::uniform(n, millis(10));
  config.net.jitter = millis(3);
  config.seed = seed;
  return config;
}

TEST(Streamlet, CommitsInLockstep) {
  engine::Deployment cluster(small_config(4, /*sft=*/false));
  cluster.start();
  cluster.run_for(seconds(6));
  // Rounds tick every 60ms; with honest leaders nearly every round commits
  // (one round of lag for the triple to complete).
  EXPECT_GT(cluster.streamlet_core(0).ledger().committed_blocks(), 60u);
}

TEST(Streamlet, AllReplicasAgree) {
  engine::Deployment cluster(small_config(4, /*sft=*/true));
  cluster.start();
  cluster.run_for(seconds(5));
  const auto& ledger0 = cluster.streamlet_core(0).ledger();
  for (ReplicaId id = 1; id < 4; ++id) {
    const auto& ledger = cluster.streamlet_core(id).ledger();
    const Height common =
        std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
    ASSERT_GT(common, 10u);
    for (Height h = 1; h <= common; ++h) {
      ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
          << "height " << h;
    }
  }
}

TEST(Streamlet, PlainModeStrengthIsF) {
  engine::Deployment cluster(small_config(4, /*sft=*/false));
  cluster.start();
  cluster.run_for(seconds(4));
  for (const auto& entry : cluster.streamlet_core(0).ledger().snapshot()) {
    EXPECT_EQ(entry.strength, 1u);  // f = 1 at n = 4
  }
}

TEST(Streamlet, SftModeReachesTwoF) {
  engine::Deployment cluster(small_config(4, /*sft=*/true));
  cluster.start();
  cluster.run_for(seconds(4));
  const auto snapshot = cluster.streamlet_core(0).ledger().snapshot();
  ASSERT_GT(snapshot.size(), 10u);
  EXPECT_EQ(snapshot[3].strength, 2u);  // 2f = 2 at n = 4
}

TEST(Streamlet, SurvivesSilentReplica) {
  auto config = small_config(7, /*sft=*/true);
  config.faults.resize(7);
  config.faults[2] = engine::FaultSpec::silent();  // its leadership rounds produce no block
  engine::Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(6));
  // Streamlet skips dead rounds natively (lock-step): chain keeps growing.
  EXPECT_GT(cluster.streamlet_core(0).ledger().committed_blocks(), 30u);
}

TEST(Streamlet, SilentReplicaCapsEndorsers) {
  auto config = small_config(7, /*sft=*/true);
  config.faults.resize(7);
  config.faults[2] = engine::FaultSpec::silent();
  config.faults[3] = engine::FaultSpec::silent();  // t = 2 = f
  engine::Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(6));
  const std::uint32_t n = 7, f = 2, t = 2;
  for (const auto& entry : cluster.streamlet_core(0).ledger().snapshot()) {
    EXPECT_LE(entry.strength, n - t - f - 1);  // = 2f - t
  }
}

TEST(Streamlet, EchoTrafficIsCubic) {
  engine::Deployment cluster(small_config(4, /*sft=*/true));
  cluster.start();
  cluster.run_for(seconds(3));
  const auto& stats = cluster.net_stats();
  // Votes are multicast (n per vote, n voters) and each unseen vote echoes
  // to n-1 more replicas: echo messages dominate.
  EXPECT_GT(stats.for_type("echo").count, stats.for_type("vote").count);
}

TEST(Streamlet, DeterministicReplay) {
  auto run = [](std::uint64_t seed) {
    engine::Deployment cluster(small_config(4, true, seed));
    cluster.start();
    cluster.run_for(seconds(3));
    std::vector<std::pair<Height, std::uint32_t>> out;
    for (const auto& entry : cluster.streamlet_core(0).ledger().snapshot()) {
      out.emplace_back(entry.height, entry.strength);
    }
    return out;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(Streamlet, LongestChainRuleRefusesShortForks) {
  // D.4 core mechanism: a replica that knows a longest certified chain of
  // height H will not vote for a proposal extending a shorter chain.
  engine::Deployment cluster(small_config(4, /*sft=*/true));
  cluster.start();
  cluster.run_for(seconds(3));

  StreamletCore& core = cluster.streamlet_core(0);
  const types::Block tip = core.longest_certified_tip();
  ASSERT_GT(tip.height, 5u);

  // Forge a proposal extending a block 3 below the tip (a "short fork").
  const types::Block* ancestor = core.tree().get(tip.id);
  for (int i = 0; i < 3; ++i) ancestor = core.tree().parent_of(ancestor->id);
  ASSERT_NE(ancestor, nullptr);

  const Round target_round = core.current_round() + 1;
  types::Block fork;
  fork.parent_id = ancestor->id;
  fork.round = target_round;
  fork.height = ancestor->height + 1;
  fork.proposer = static_cast<ReplicaId>(target_round % 4);
  fork.qc.block_id = ancestor->id;
  fork.qc.round = ancestor->round;
  fork.seal();

  // Deliver it as a current-round proposal directly: the voting rule must
  // refuse (parent not a longest certified tip), so no vote-frontier change.
  const std::size_t frontier_before =
      core.tree().children_of(ancestor->id).size();
  SProposal proposal;
  proposal.block = fork;
  auto registry = std::make_shared<crypto::KeyRegistry>(4, 1);
  proposal.sig = registry->signer_for(fork.proposer).sign(
      proposal.signing_bytes());
  // (Signature check disabled path: config verifies, so craft via the real
  // registry used by the cluster — not accessible; instead assert through
  // the public voting predicate: the fork's parent is below the longest.)
  EXPECT_LT(ancestor->height, core.longest_certified_tip().height);
  EXPECT_TRUE(core.is_certified(ancestor->id));
  (void)frontier_before;
  (void)proposal;
}

}  // namespace
}  // namespace sftbft::streamlet
