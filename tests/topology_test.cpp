// Topology: the Fig. 6 geometries, interleaved region assignment,
// straggler surcharges, and Δ derivation.
#include <gtest/gtest.h>

#include "sftbft/net/topology.hpp"

namespace sftbft::net {
namespace {

TEST(Topology, UniformDelays) {
  const Topology topo = Topology::uniform(4, millis(10));
  EXPECT_EQ(topo.size(), 4u);
  EXPECT_EQ(topo.base_delay(0, 1), millis(10));
  EXPECT_EQ(topo.base_delay(3, 2), millis(10));
  EXPECT_EQ(topo.base_delay(2, 2), 0);  // self
}

TEST(Topology, Symmetric3SizesAt100) {
  const Topology topo = Topology::symmetric3(100, millis(100), millis(1));
  EXPECT_EQ(topo.size(), 100u);
  std::uint32_t sizes[3] = {};
  for (ReplicaId id = 0; id < 100; ++id) sizes[topo.region_of(id)]++;
  // Paper: 34/33/33.
  EXPECT_EQ(sizes[0], 34u);
  EXPECT_EQ(sizes[1], 33u);
  EXPECT_EQ(sizes[2], 33u);
}

TEST(Topology, Symmetric3DelayStructure) {
  const Topology topo = Topology::symmetric3(9, millis(100), millis(1));
  ReplicaId same_region_peer = kNoReplica;
  ReplicaId other_region_peer = kNoReplica;
  for (ReplicaId id = 1; id < 9; ++id) {
    if (topo.region_of(id) == topo.region_of(0)) same_region_peer = id;
    if (topo.region_of(id) != topo.region_of(0)) other_region_peer = id;
  }
  ASSERT_NE(same_region_peer, kNoReplica);
  ASSERT_NE(other_region_peer, kNoReplica);
  EXPECT_EQ(topo.base_delay(0, same_region_peer), millis(1));
  EXPECT_EQ(topo.base_delay(0, other_region_peer), millis(100));
}

TEST(Topology, RegionsAreInterleaved) {
  // Round-robin leadership must alternate regions: no long same-region runs.
  const Topology topo = Topology::symmetric3(99, millis(100), millis(1));
  std::uint32_t longest_run = 1, run = 1;
  for (ReplicaId id = 1; id < 99; ++id) {
    if (topo.region_of(id) == topo.region_of(id - 1)) {
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 1;
    }
  }
  EXPECT_LE(longest_run, 2u);
}

TEST(Topology, Asymmetric3Structure) {
  const Topology topo =
      Topology::asymmetric3(45, 45, 10, millis(20), millis(100), millis(1));
  EXPECT_EQ(topo.size(), 100u);
  std::uint32_t sizes[3] = {};
  for (ReplicaId id = 0; id < 100; ++id) sizes[topo.region_of(id)]++;
  EXPECT_EQ(sizes[0], 45u);
  EXPECT_EQ(sizes[1], 45u);
  EXPECT_EQ(sizes[2], 10u);

  ReplicaId a = kNoReplica, b = kNoReplica, c = kNoReplica;
  for (ReplicaId id = 0; id < 100; ++id) {
    if (topo.region_of(id) == 0 && a == kNoReplica) a = id;
    if (topo.region_of(id) == 1 && b == kNoReplica) b = id;
    if (topo.region_of(id) == 2 && c == kNoReplica) c = id;
  }
  EXPECT_EQ(topo.base_delay(a, b), millis(20));
  EXPECT_EQ(topo.base_delay(a, c), millis(100));
  EXPECT_EQ(topo.base_delay(c, b), millis(100));
}

TEST(Topology, StragglerSurchargeBothEnds) {
  Topology topo = Topology::uniform(4, millis(10));
  topo.set_extra_delay(1, millis(30));
  EXPECT_EQ(topo.base_delay(1, 2), millis(40));  // sender surcharge
  EXPECT_EQ(topo.base_delay(2, 1), millis(40));  // receiver surcharge
  EXPECT_EQ(topo.base_delay(2, 3), millis(10));  // untouched pair
  topo.set_extra_delay(2, millis(5));
  EXPECT_EQ(topo.base_delay(1, 2), millis(45));  // both ends combine
}

TEST(Topology, MaxBaseDelayIncludesTwoWorstStragglers) {
  Topology topo = Topology::uniform(5, millis(10));
  topo.set_extra_delay(0, millis(100));
  topo.set_extra_delay(3, millis(40));
  EXPECT_EQ(topo.max_base_delay(), millis(10 + 100 + 40));
}

}  // namespace
}  // namespace sftbft::net
