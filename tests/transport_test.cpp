// SimTransport: delivery timing, jitter bounds, GST semantics, partitions,
// stats, byte-level rejection — the partial-synchrony substrate both
// protocol stacks now share.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sftbft/net/sim_transport.hpp"

namespace sftbft::net {
namespace {

struct Delivery {
  ReplicaId from;
  ReplicaId at_replica;
  Bytes payload;
  SimTime at;
  std::size_t frame_bytes;
};

Envelope make_envelope(ReplicaId sender, Bytes payload,
                       WireType type = WireType::kVote) {
  return Envelope{type, sender, std::move(payload)};
}

Envelope sized_envelope(ReplicaId sender, std::size_t frame_bytes) {
  // Frame = payload + fixed overhead; build a payload hitting the target.
  EXPECT_GE(frame_bytes, Envelope::kOverhead);
  return make_envelope(sender, Bytes(frame_bytes - Envelope::kOverhead, 0xAB));
}

struct Harness {
  sim::Scheduler sched;
  std::vector<Delivery> deliveries;

  SimTransport make(Topology topo, NetConfig config, std::uint64_t seed = 1) {
    SimTransport transport(sched, std::move(topo), config, seed);
    for (ReplicaId id = 0; id < transport.topology().size(); ++id) {
      transport.set_handler(
          id, [this, id](const Envelope& env, std::size_t frame_bytes) {
            deliveries.push_back(
                {env.sender, id, env.payload, sched.now(), frame_bytes});
          });
    }
    return transport;
  }
};

TEST(SimTransport, DeliversAtBaseDelay) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.send(1, make_envelope(0, {1, 2, 3}));
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, millis(10));
  EXPECT_EQ(h.deliveries[0].at_replica, 1u);
  EXPECT_EQ(h.deliveries[0].payload, (Bytes{1, 2, 3}));
}

TEST(SimTransport, ChargesExactEncodedBytes) {
  // The size the receiver sees — and the size the stats charge — is the
  // exact encoded frame: payload + Envelope::kOverhead, not an estimate.
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  const Envelope env = make_envelope(0, Bytes(120, 7));
  const std::size_t frame = env.encode().size();
  EXPECT_EQ(frame, 120 + Envelope::kOverhead);
  net.send(1, env);
  net.send(2, make_envelope(2, Bytes(50, 1)));  // self-send, immediate
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].frame_bytes, 50 + Envelope::kOverhead);
  EXPECT_EQ(h.deliveries[1].frame_bytes, frame);
  EXPECT_EQ(net.stats().for_type("vote").bytes,
            frame + 50 + Envelope::kOverhead);
}

TEST(SimTransport, SelfSendIsImmediate) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.send(2, make_envelope(2, {9}));
  // Delivered synchronously, no event needed.
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, 0);
}

TEST(SimTransport, JitterStaysWithinBound) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.jitter = millis(5)});
  for (int i = 0; i < 50; ++i) net.send(1, make_envelope(0, {1}));
  h.sched.run_until_idle();
  for (const Delivery& d : h.deliveries) {
    EXPECT_GE(d.at, millis(10));
    EXPECT_LE(d.at, millis(15));
  }
}

TEST(SimTransport, ProportionalJitterScalesWithDistance) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(100)),
                    {.jitter = 0, .jitter_frac = 0.5});
  for (int i = 0; i < 50; ++i) net.send(1, make_envelope(0, {1}));
  h.sched.run_until_idle();
  SimTime max_seen = 0;
  for (const Delivery& d : h.deliveries) {
    EXPECT_GE(d.at, millis(100));
    EXPECT_LE(d.at, millis(150));
    max_seen = std::max(max_seen, d.at);
  }
  EXPECT_GT(max_seen, millis(110));  // jitter actually applied
}

TEST(SimTransport, BandwidthAddsTransferTime) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)),
                    {.bandwidth_bytes_per_sec = 1'000'000});
  net.send(1, sized_envelope(0, 500'000));  // 0.5s at 1 MB/s
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at, millis(10) + millis(500));
}

TEST(SimTransport, GstDelaysEarlyMessages) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.gst = millis(100)});
  net.send(1, make_envelope(0, {1}));  // sent at t=0, before GST
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  // Arrives no earlier than GST + base delay.
  EXPECT_EQ(h.deliveries[0].at, millis(110));
}

TEST(SimTransport, BroadcastReachesAll) {
  Harness h;
  auto net = h.make(Topology::uniform(4, millis(10)), {});
  net.broadcast(make_envelope(1, {1}), /*include_self=*/true);
  h.sched.run_until_idle();
  EXPECT_EQ(h.deliveries.size(), 4u);
  net.broadcast(make_envelope(1, {2}), /*include_self=*/false);
  h.sched.run_until_idle();
  EXPECT_EQ(h.deliveries.size(), 7u);
}

TEST(SimTransport, BroadcastCountsEncodeOnceSavings) {
  Harness h;
  auto net = h.make(Topology::uniform(4, millis(10)), {});
  const Envelope env = make_envelope(0, Bytes(100, 3));
  const std::size_t frame = env.encode().size();
  net.broadcast(env, /*include_self=*/true);
  // 4 recipients share one encoded frame: 3 encodes saved.
  EXPECT_EQ(net.stats().broadcast_saved_bytes(), 3 * frame);
}

TEST(SimTransport, DisconnectDropsInbound) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.disconnect(1);
  EXPECT_FALSE(net.connected(1));
  net.broadcast(make_envelope(0, {1}), /*include_self=*/true);
  h.sched.run_until_idle();
  EXPECT_EQ(h.deliveries.size(), 2u);  // replicas 0 and 2 only
}

TEST(SimTransport, LinkFilterDropsSelectively) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.set_link_filter([](ReplicaId from, ReplicaId to) {
    return !(from == 0 && to == 2);  // partition one direction
  });
  net.broadcast(make_envelope(0, {1}), /*include_self=*/false);
  net.send(0, make_envelope(2, {2}));  // reverse direction still works
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].at_replica, 1u);
  EXPECT_EQ(h.deliveries[1].at_replica, 0u);
  EXPECT_EQ(h.deliveries[1].from, 2u);
}

TEST(SimTransport, StatsCountEverything) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  const Envelope prop = make_envelope(0, Bytes(1000, 1), WireType::kProposal);
  const std::size_t frame = prop.encode().size();
  net.broadcast(prop, /*include_self=*/true);
  net.send(0, make_envelope(1, {1}));
  EXPECT_EQ(net.stats().total_count(), 4u);
  EXPECT_EQ(net.stats().for_type("proposal").count, 3u);
  EXPECT_EQ(net.stats().for_type("proposal").bytes, 3u * frame);
  EXPECT_EQ(net.stats().for_type("vote").count, 1u);
  EXPECT_EQ(net.stats().for_type("nothing").count, 0u);
}

TEST(SimTransport, LabelOverridesStatsKey) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {});
  net.broadcast(make_envelope(0, {1}), /*include_self=*/false, "extra_vote");
  EXPECT_EQ(net.stats().for_type("extra_vote").count, 2u);
  EXPECT_EQ(net.stats().for_type("vote").count, 0u);
}

TEST(SimTransport, StragglerDelaysApply) {
  Harness h;
  Topology topo = Topology::uniform(3, millis(10));
  topo.set_extra_delay(1, millis(20));
  auto net = h.make(std::move(topo), {});
  net.send(1, make_envelope(0, {1}));
  net.send(2, make_envelope(0, {2}));
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].at, millis(10));  // normal first
  EXPECT_EQ(h.deliveries[0].at_replica, 2u);
  EXPECT_EQ(h.deliveries[1].at, millis(30));
}

// -------------------------------------------------------------- corruption

TEST(SimTransport, CorruptionDropsFramesPreGst) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.gst = seconds(1)});
  net.set_corruption(0, CorruptSpec{.rate = 1.0, .max_flips = 3, .peers = {}});
  for (int i = 0; i < 20; ++i) net.send(1, make_envelope(0, Bytes(200, 5)));
  h.sched.run_until_idle();
  // Every frame was flipped; the CRC rejects them all — dropped, counted,
  // and never delivered (and nothing crashed).
  EXPECT_EQ(net.stats().corrupt_injected(), 20u);
  EXPECT_EQ(net.stats().corrupt_drops(), 20u);
  EXPECT_TRUE(h.deliveries.empty());
  // Send-side stats still charged the wire (the bytes did travel).
  EXPECT_EQ(net.stats().for_type("vote").count, 20u);
}

TEST(SimTransport, CorruptionStopsAtGst) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.gst = millis(50)});
  net.set_corruption(0, CorruptSpec{.rate = 1.0, .max_flips = 1, .peers = {}});
  net.send(1, make_envelope(0, {1}));  // t=0 < GST: corrupted
  h.sched.run_until(millis(60));
  net.send(1, make_envelope(0, {2}));  // t=60 >= GST: clean
  h.sched.run_until_idle();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].payload, (Bytes{2}));
  EXPECT_EQ(net.stats().corrupt_drops(), 1u);
}

TEST(SimTransport, CorruptionRespectsPeerSelection) {
  Harness h;
  auto net = h.make(Topology::uniform(3, millis(10)), {.gst = seconds(1)});
  net.set_corruption(0, CorruptSpec{.rate = 1.0, .max_flips = 2,
                                    .peers = {2}});
  net.broadcast(make_envelope(0, Bytes(64, 9)), /*include_self=*/false);
  h.sched.run_until_idle();
  // Only the 0 -> 2 link is bad; replica 1 still gets its copy.
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(h.deliveries[0].at_replica, 1u);
  EXPECT_EQ(net.stats().corrupt_drops(), 1u);
}

TEST(SimTransport, SelfSendsNeverCorrupted) {
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.gst = seconds(1)});
  net.set_corruption(0, CorruptSpec{.rate = 1.0, .max_flips = 8, .peers = {}});
  net.send(0, make_envelope(0, {1, 2}));
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_EQ(net.stats().corrupt_drops(), 0u);
}

TEST(SimTransport, CorruptionClampsFlipsToTinyFrames) {
  // max_flips far beyond a small frame's bit count must terminate (the
  // distinct-bit sampler clamps) and still corrupt the frame.
  Harness h;
  auto net = h.make(Topology::uniform(2, millis(10)), {.gst = seconds(1)});
  net.set_corruption(0, CorruptSpec{.rate = 1.0, .max_flips = 10'000,
                                    .peers = {}});
  net.send(1, make_envelope(0, {1}));  // frame = kOverhead + 1 bytes
  h.sched.run_until_idle();
  EXPECT_TRUE(h.deliveries.empty());
  EXPECT_EQ(net.stats().corrupt_drops(), 1u);
}

TEST(SimTransport, CorruptionIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    Harness h;
    auto net = h.make(Topology::uniform(2, millis(10)), {.gst = seconds(1)},
                      seed);
    net.set_corruption(0, CorruptSpec{.rate = 0.5, .max_flips = 2, .peers = {}});
    for (int i = 0; i < 40; ++i) net.send(1, make_envelope(0, Bytes(32, 1)));
    h.sched.run_until_idle();
    return net.stats().corrupt_drops();
  };
  EXPECT_EQ(run(7), run(7));
  // A ~0.5 rate over 40 frames lands strictly inside (0, 40).
  EXPECT_GT(run(7), 0u);
  EXPECT_LT(run(7), 40u);
}

}  // namespace
}  // namespace sftbft::net
