// Protocol types: canonical serialization round-trips (parameterized over
// vote modes and randomized contents), digest stability, QC/TC validation.
#include <gtest/gtest.h>

#include "sftbft/common/rng.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft::types {
namespace {

crypto::KeyRegistry& registry() {
  static crypto::KeyRegistry reg(7, 5);
  return reg;
}

Vote make_signed_vote(ReplicaId voter, const BlockId& block_id, Round round,
                      VoteMode mode, Round marker = 0) {
  Vote vote;
  vote.block_id = block_id;
  vote.round = round;
  vote.voter = voter;
  vote.mode = mode;
  vote.marker = marker;
  if (mode == VoteMode::Intervals) {
    vote.endorsed = IntervalSet::single(marker + 1, round);
  }
  vote.sig = registry().signer_for(voter).sign(vote.signing_bytes());
  return vote;
}

Block make_block(const Block& parent, Round round) {
  Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.proposer = static_cast<ReplicaId>(round % 7);
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.payload.txns.push_back({.id = round, .submitted_at = 1, .size_bytes = 450});
  block.seal();
  return block;
}

// ------------------------------------------------------------------ votes

class VoteModeRoundTrip : public ::testing::TestWithParam<VoteMode> {};

TEST_P(VoteModeRoundTrip, EncodeDecodeIdentity) {
  const Block genesis = Block::genesis();
  const Vote vote = make_signed_vote(3, genesis.id, 9, GetParam(), 4);
  Encoder enc;
  vote.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(Vote::decode(dec), vote);
  EXPECT_TRUE(dec.exhausted());
}

TEST_P(VoteModeRoundTrip, SigningBytesCoverMode) {
  const Block genesis = Block::genesis();
  Vote vote = make_signed_vote(3, genesis.id, 9, GetParam(), 4);
  const Bytes original = vote.signing_bytes();
  vote.marker += 1;
  EXPECT_NE(vote.signing_bytes(), original);  // marker is signed
}

INSTANTIATE_TEST_SUITE_P(AllModes, VoteModeRoundTrip,
                         ::testing::Values(VoteMode::Plain, VoteMode::Marker,
                                           VoteMode::Intervals));

TEST(Vote, EndorsementSemantics) {
  Vote vote;
  vote.round = 10;
  vote.mode = VoteMode::Marker;
  vote.marker = 6;
  EXPECT_TRUE(vote.endorses_round(10));  // own block, always
  EXPECT_TRUE(vote.endorses_round(7));   // 7 > marker
  EXPECT_FALSE(vote.endorses_round(6));  // 6 == marker: blocked
  EXPECT_FALSE(vote.endorses_round(2));

  vote.mode = VoteMode::Plain;
  EXPECT_TRUE(vote.endorses_round(10));
  EXPECT_FALSE(vote.endorses_round(9));  // plain votes are direct-only

  vote.mode = VoteMode::Intervals;
  vote.endorsed = IntervalSet::single(4, 10);
  vote.endorsed.subtract(6, 7);
  EXPECT_TRUE(vote.endorses_round(5));
  EXPECT_FALSE(vote.endorses_round(6));  // hole
  EXPECT_TRUE(vote.endorses_round(8));
  EXPECT_FALSE(vote.endorses_round(3));
}

TEST(Vote, DecodeRejectsBadMode) {
  const Block genesis = Block::genesis();
  Vote vote = make_signed_vote(0, genesis.id, 1, VoteMode::Plain);
  Encoder enc;
  vote.encode(enc);
  Bytes raw = enc.take();
  raw[32 + 8 + 4] = 9;  // mode byte
  Decoder dec(raw);
  EXPECT_THROW(Vote::decode(dec), CodecError);
}

// -------------------------------------------------------------------- QCs

TEST(QuorumCert, VerifyAcceptsValidQuorum) {
  const Block genesis = Block::genesis();
  const Block block = make_block(genesis, 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  qc.parent_id = genesis.id;
  qc.parent_round = 0;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    EXPECT_TRUE(
        qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker)));
  }
  qc.canonicalize();
  EXPECT_TRUE(qc.verify(registry(), 5));
}

TEST(QuorumCert, VerifyRejectsBelowQuorum) {
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  for (ReplicaId voter = 0; voter < 4; ++voter) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker));
  }
  qc.canonicalize();
  EXPECT_FALSE(qc.verify(registry(), 5));
}

TEST(QuorumCert, DuplicateVoterCannotFoldTwice) {
  // The aggregate refuses a second fold of the same signer (XOR would cancel
  // the first), so a duplicate voter is unrepresentable through the builder.
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  const Vote vote = make_signed_vote(2, block.id, 1, VoteMode::Marker);
  EXPECT_TRUE(qc.add_vote(vote));
  EXPECT_FALSE(qc.add_vote(vote));
  EXPECT_EQ(qc.votes.size(), 1u);
  EXPECT_EQ(qc.agg.signers.popcount(), 1u);
}

TEST(QuorumCert, VerifyRejectsMetaBitmapMisalignment) {
  // A hand-crafted votes list that disagrees with the signer bitmap (here: a
  // duplicate-voter meta smuggled in past the aggregate) must not verify.
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker));
  }
  qc.votes.push_back(qc.votes[2]);  // bitmap still has 5 bits
  qc.canonicalize();
  EXPECT_FALSE(qc.verify(registry(), 5));
}

TEST(QuorumCert, VerifyRejectsWrongBlock) {
  const Block block = make_block(Block::genesis(), 1);
  const Block other = make_block(Block::genesis(), 2);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  for (ReplicaId voter = 0; voter < 4; ++voter) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker));
  }
  // Voter 4 signed a different block: the recomputed MAC over *this* QC's
  // block id cannot match what got folded into the tag.
  qc.add_vote(make_signed_vote(4, other.id, 1, VoteMode::Marker));
  qc.canonicalize();
  EXPECT_FALSE(qc.verify(registry(), 5));
}

TEST(QuorumCert, VerifyRejectsTamperedMarker) {
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker, 2));
  }
  qc.votes[3].meta.marker = 0;  // lie about history without re-signing
  qc.canonicalize();
  EXPECT_FALSE(qc.verify(registry(), 5));
}

TEST(QuorumCert, VerifyRejectsForgedAggregateTag) {
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker));
  }
  qc.canonicalize();
  ASSERT_TRUE(qc.verify(registry(), 5));
  qc.agg.tag[7] ^= 0x20;
  EXPECT_FALSE(qc.verify(registry(), 5));
}

TEST(QuorumCert, GenesisQcIsValid) {
  QuorumCert qc;  // round 0, no votes
  EXPECT_TRUE(qc.is_genesis());
  EXPECT_TRUE(qc.verify(registry(), 5));
}

TEST(QuorumCert, CanonicalizeSortsByVoter) {
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  for (ReplicaId voter : {4u, 1u, 3u}) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Plain));
  }
  qc.canonicalize();
  EXPECT_EQ(qc.votes[0].voter, 1u);
  EXPECT_EQ(qc.votes[1].voter, 3u);
  EXPECT_EQ(qc.votes[2].voter, 4u);
}

TEST(QuorumCert, DigestBindsVoterSet) {
  const Block block = make_block(Block::genesis(), 1);
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = 1;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    qc.add_vote(make_signed_vote(voter, block.id, 1, VoteMode::Marker));
  }
  const auto base = qc.digest();
  // The digest is memoized per object and survives copies; editing a copy
  // requires the documented canonicalize() refresh before digest() speaks
  // for the new content again.
  QuorumCert more = qc;
  more.add_vote(make_signed_vote(5, block.id, 1, VoteMode::Marker));
  more.canonicalize();
  EXPECT_NE(more.digest(), base);
  QuorumCert tampered = qc;
  tampered.votes[0].meta.marker = 7;
  EXPECT_EQ(tampered.digest(), base);  // stale memo until the refresh point
  tampered.canonicalize();
  EXPECT_NE(tampered.digest(), base);
  // An untouched copy shares the memo (and the answer).
  const QuorumCert copy = qc;
  EXPECT_EQ(copy.digest(), base);
}

// ------------------------------------------------------------------ blocks

TEST(Block, SealedIdDetectsTampering) {
  Block block = make_block(Block::genesis(), 3);
  EXPECT_TRUE(block.id_is_valid());
  block.round = 4;
  EXPECT_FALSE(block.id_is_valid());
  block.seal();
  EXPECT_TRUE(block.id_is_valid());
}

TEST(Block, RoundTrip) {
  const Block block = make_block(Block::genesis(), 3);
  Encoder enc;
  block.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(Block::decode(dec), block);
}

TEST(Block, EncodedSizeCarriesTransactionBodies) {
  // The canonical encoding materializes each transaction's synthetic body,
  // so encoded blocks really are block-sized (the transport charges exactly
  // these bytes) while decode stays compact (bodies are skipped).
  Block block = make_block(Block::genesis(), 1);
  Encoder base_enc;
  block.encode(base_enc);
  const std::size_t base = base_enc.data().size();
  block.payload.txns.push_back({.id = 99, .submitted_at = 0, .size_bytes = 4500});
  block.seal();
  Encoder enc;
  block.encode(enc);
  EXPECT_GE(enc.data().size(), base + 4500);
  Decoder dec(enc.data());
  const Block decoded = Block::decode(dec);
  EXPECT_EQ(decoded, block);
  EXPECT_TRUE(dec.exhausted());
  // Re-encoding a decoded block regenerates the bodies bit-identically.
  Encoder again;
  decoded.encode(again);
  EXPECT_EQ(again.data(), enc.data());
}

TEST(Block, GenesisIsStable) {
  EXPECT_EQ(Block::genesis().id, Block::genesis().id);
  EXPECT_EQ(Block::genesis().height, 0u);
  EXPECT_EQ(Block::genesis().round, 0u);
}

// --------------------------------------------------------------- timeouts

TEST(TimeoutCert, VerifyAndHighestQc) {
  // A real certified QC at round 3, held by two of the timing-out senders;
  // the rest still sit on the genesis QC.
  const Block block = make_block(Block::genesis(), 3);
  QuorumCert high;
  high.block_id = block.id;
  high.round = 3;
  high.parent_id = block.parent_id;
  for (ReplicaId voter = 0; voter < 5; ++voter) {
    high.add_vote(make_signed_vote(voter, block.id, 3, VoteMode::Marker));
  }
  high.canonicalize();

  TimeoutCert tc;
  tc.round = 5;
  for (ReplicaId sender = 0; sender < 5; ++sender) {
    TimeoutMsg msg;
    msg.round = 5;
    msg.sender = sender;
    if (sender >= 3) msg.high_qc = high;
    msg.sig = registry().signer_for(sender).sign(msg.signing_bytes());
    EXPECT_TRUE(tc.add_timeout(msg));
  }
  EXPECT_TRUE(tc.verify(registry(), 5));
  EXPECT_EQ(tc.highest_qc().round, 3u);

  // A member's claimed high-QC round cannot be rewritten: the claim is
  // signed, so the refolded aggregate no longer matches.
  TimeoutCert lied = tc;
  lied.hqc_rounds[4] = 2;
  EXPECT_FALSE(lied.verify(registry(), 5));

  // Nor can the representative QC be swapped below the members' max.
  TimeoutCert hidden = tc;
  hidden.high_qc = QuorumCert{};
  EXPECT_FALSE(hidden.verify(registry(), 5));

  // Forged aggregate tag.
  TimeoutCert forged = tc;
  forged.agg.tag[0] ^= 1;
  EXPECT_FALSE(forged.verify(registry(), 5));
}

TEST(TimeoutCert, RoundTrip) {
  TimeoutCert tc;
  tc.round = 7;
  for (ReplicaId sender = 1; sender < 6; ++sender) {
    TimeoutMsg msg;
    msg.round = 7;
    msg.sender = sender;
    msg.sig = registry().signer_for(sender).sign(msg.signing_bytes());
    tc.add_timeout(msg);
  }
  Encoder enc;
  tc.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(TimeoutCert::decode(dec), tc);
  EXPECT_TRUE(dec.exhausted());
}

TEST(TimeoutMsg, RoundTrip) {
  TimeoutMsg msg;
  msg.round = 9;
  msg.sender = 2;
  msg.high_qc.round = 7;
  msg.sig = registry().signer_for(2).sign(msg.signing_bytes());
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(TimeoutMsg::decode(dec), msg);
}

// --------------------------------------------------------------- proposals

TEST(Proposal, RoundTripWithTcAndLog) {
  Proposal proposal;
  proposal.block = make_block(Block::genesis(), 2);
  TimeoutCert tc;
  tc.round = 1;
  TimeoutMsg msg;
  msg.round = 1;
  msg.sender = 0;
  msg.sig = registry().signer_for(0).sign(msg.signing_bytes());
  tc.add_timeout(msg);
  proposal.tc = tc;
  proposal.commit_log.push_back(
      {.block_id = proposal.block.parent_id, .round = 1, .strength = 3});
  proposal.sig = registry().signer_for(2).sign(proposal.signing_bytes());

  Encoder enc;
  proposal.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(Proposal::decode(dec), proposal);
}

TEST(Proposal, SignatureCoversCommitLog) {
  Proposal proposal;
  proposal.block = make_block(Block::genesis(), 2);
  proposal.commit_log.push_back({.block_id = {}, .round = 1, .strength = 2});
  const Bytes before = proposal.signing_bytes();
  proposal.commit_log[0].strength = 5;
  EXPECT_NE(proposal.signing_bytes(), before);
}

TEST(MessageHelpers, TypeNames) {
  const Message prop = Proposal{.block = make_block(Block::genesis(), 1)};
  const Message vote = make_signed_vote(0, Block::genesis().id, 1, VoteMode::Plain);
  const Message timeout = TimeoutMsg{};
  EXPECT_STREQ(message_type_name(prop), "proposal");
  EXPECT_STREQ(message_type_name(vote), "vote");
  EXPECT_STREQ(message_type_name(timeout), "timeout");
}

// Randomized round-trip sweep: arbitrary vote/QC contents survive encoding.
class RandomizedRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedRoundTrip, QuorumCert) {
  Rng rng(GetParam());
  const Block block = make_block(Block::genesis(), 1 + rng.uniform(0, 50));
  QuorumCert qc;
  qc.block_id = block.id;
  qc.round = block.round;
  qc.parent_id = block.parent_id;
  const auto voters = 1 + rng.uniform(0, 6);
  for (std::int64_t i = 0; i < voters; ++i) {
    const auto mode = static_cast<VoteMode>(rng.uniform(0, 2));
    qc.add_vote(make_signed_vote(static_cast<ReplicaId>(i), block.id,
                                 block.round, mode,
                                 rng.uniform(0, block.round - 1)));
  }
  qc.canonicalize();
  Encoder enc;
  qc.encode(enc);
  Decoder dec(enc.data());
  EXPECT_EQ(QuorumCert::decode(dec), qc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace sftbft::types
