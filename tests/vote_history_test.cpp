// VoteHistory: per-fork frontier maintenance, marker computation (Fig. 4)
// and interval computation (Sec. 3.4) on constructed fork trees.
#include <gtest/gtest.h>

#include "sftbft/core/vote_history.hpp"

namespace sftbft::core {
namespace {

using types::Block;

Block child_of(const Block& parent, Round round) {
  Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.seal();
  return block;
}

class VoteHistoryTest : public ::testing::Test {
 protected:
  chain::BlockTree tree_;
  VoteHistory history_{tree_};
  Block genesis_ = tree_.genesis();

  const Block& add(const Block& parent, Round round) {
    const Block block = child_of(parent, round);
    tree_.insert(block);
    return *tree_.get(block.id);
  }
};

TEST_F(VoteHistoryTest, NoConflictsMeansMarkerZero) {
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  history_.record_vote(b1);
  EXPECT_EQ(history_.marker_for(b2), 0u);
}

TEST_F(VoteHistoryTest, FrontierKeepsOneEntryPerFork) {
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  history_.record_vote(b1);
  history_.record_vote(b2);
  history_.record_vote(b3);
  // All on one fork: frontier collapses to the latest vote.
  ASSERT_EQ(history_.frontier().size(), 1u);
  EXPECT_EQ(history_.frontier()[0].block_id, b3.id);
}

TEST_F(VoteHistoryTest, MarkerIsMaxConflictingVotedRound) {
  //        g - b1 - b2 - b5(main)
  //              \- f3 - f4(fork)
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& f3 = add(b1, 3);
  const Block& f4 = add(f3, 4);
  const Block& b5 = add(b2, 5);

  history_.record_vote(b2);
  history_.record_vote(f3);
  history_.record_vote(f4);

  // Voting for b5 on the main fork: conflicting voted blocks are f3, f4;
  // the marker is the max conflicting round = 4.
  EXPECT_EQ(history_.marker_for(b5), 4u);
  ASSERT_EQ(history_.frontier().size(), 2u);
}

TEST_F(VoteHistoryTest, MarkerIgnoresOwnForkVotes) {
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  history_.record_vote(b1);
  history_.record_vote(b2);
  EXPECT_EQ(history_.marker_for(b3), 0u);  // ancestors don't conflict
}

TEST_F(VoteHistoryTest, IntervalsFullHistoryNoForks) {
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b5 = add(b2, 5);
  history_.record_vote(b1);
  history_.record_vote(b2);
  const IntervalSet intervals = history_.intervals_for(b5, 0);
  EXPECT_EQ(intervals, IntervalSet::single(1, 5));  // endorse everything
}

TEST_F(VoteHistoryTest, IntervalsSubtractForkWindows) {
  //   g - b1 - b2 --------- b7(main, about to vote)
  //         \- f3 - f5(fork, voted)
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& f3 = add(b1, 3);
  const Block& f5 = add(f3, 5);
  const Block& b7 = add(b2, 7);

  history_.record_vote(b2);
  history_.record_vote(f3);
  history_.record_vote(f5);

  // Fork F's D_F = [r_l + 1, r_h] with r_l = round(common ancestor b7, f5)
  // = round(b1) = 1 and r_h = 5. I = [1,7] \ [2,5] = [1,1] ∪ [6,7].
  const IntervalSet intervals = history_.intervals_for(b7, 0);
  IntervalSet expected = IntervalSet::single(1, 7);
  expected.subtract(2, 5);
  EXPECT_EQ(intervals, expected);

  // Note the marker solution would be coarser: marker = 5 endorses only
  // [6, 7] — intervals additionally recover round 1 (better liveness).
  EXPECT_EQ(history_.marker_for(b7), 5u);
  EXPECT_TRUE(intervals.contains(1));
}

TEST_F(VoteHistoryTest, IntervalsWindowed) {
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b9 = add(b2, 9);
  history_.record_vote(b1);
  history_.record_vote(b2);
  // Window of 3 rounds: I = [9-3, 9] = [6, 9].
  const IntervalSet intervals = history_.intervals_for(b9, 3);
  EXPECT_EQ(intervals, IntervalSet::single(6, 9));
}

TEST_F(VoteHistoryTest, RecordsRoundTripPreservesMarkersAndIntervals) {
  // Crash-recovery invariant (storage layer): exporting the frontier and
  // importing it into a fresh history over the same tree must reproduce
  // marker_for and intervals_for exactly — no vote replay needed.
  //        g - b1 - b2 - b6(main)
  //              \- f3 - f4(fork 1)
  //         \- f5 (fork 2, off genesis)
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& f3 = add(b1, 3);
  const Block& f4 = add(f3, 4);
  const Block& f5 = add(genesis_, 5);
  const Block& b6 = add(b2, 6);

  history_.record_vote(b1);
  history_.record_vote(b2);
  history_.record_vote(f3);
  history_.record_vote(f4);
  history_.record_vote(f5);

  VoteHistory imported(tree_);
  imported.from_records(history_.to_records());

  EXPECT_EQ(imported.frontier(), history_.frontier());
  for (const Block* probe : {&b6, &f4, &f5}) {
    EXPECT_EQ(imported.marker_for(*probe), history_.marker_for(*probe));
    for (const Round window : {Round{0}, Round{2}, Round{10}}) {
      EXPECT_EQ(imported.intervals_for(*probe, window),
                history_.intervals_for(*probe, window));
    }
  }
}

TEST_F(VoteHistoryTest, FromRecordsPrunesDominatedEntries) {
  // WAL replay hands over every vote since the last snapshot, oldest first;
  // import must collapse same-fork records to the frontier.
  const Block& b1 = add(genesis_, 1);
  const Block& b2 = add(b1, 2);
  const Block& b3 = add(b2, 3);
  VoteHistory imported(tree_);
  imported.from_records({{b1.id, 1}, {b2.id, 2}, {b3.id, 3}});
  ASSERT_EQ(imported.frontier().size(), 1u);
  EXPECT_EQ(imported.frontier()[0].block_id, b3.id);
}

TEST_F(VoteHistoryTest, UnknownRestoredEntriesAreConservative) {
  // A restored record whose block the rebuilt tree has not re-learned yet
  // must count as conflicting: the marker can only be too high and the
  // intervals too small (under-endorsement is safe; over-endorsement
  // would threaten Theorem 1).
  const Block& b1 = add(genesis_, 1);
  const Block& b9 = add(b1, 9);
  types::BlockId unknown;
  unknown.bytes[0] = 0x77;
  VoteHistory imported(tree_);
  imported.from_records({{unknown, 6}});
  EXPECT_EQ(imported.marker_for(b9), 6u);
  IntervalSet expected = IntervalSet::single(1, 9);
  expected.subtract(1, 6);
  EXPECT_EQ(imported.intervals_for(b9, 0), expected);
}

TEST_F(VoteHistoryTest, MultipleForksAllSubtracted) {
  //   g - b1 - b6(main)
  //    \- f2 - f3 (fork 1, voted f3)
  //    \- f4 (fork 2, voted f4)
  const Block& b1 = add(genesis_, 1);
  const Block& f2 = add(genesis_, 2);
  const Block& f3 = add(f2, 3);
  const Block& f4 = add(genesis_, 4);
  const Block& b6 = add(b1, 6);

  history_.record_vote(b1);
  history_.record_vote(f3);
  history_.record_vote(f4);

  // D_fork1 = [0+1, 3] = [1,3]; D_fork2 = [1, 4]; I = [1,6] \ [1,4] = [5,6].
  const IntervalSet intervals = history_.intervals_for(b6, 0);
  EXPECT_EQ(intervals, IntervalSet::single(5, 6));
  EXPECT_EQ(history_.marker_for(b6), 4u);
}

}  // namespace
}  // namespace sftbft::core
