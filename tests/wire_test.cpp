// The byte-level wire protocol:
//  * parity — the size the transport charges for every message type equals
//    the canonical `Envelope::encode().size()` exactly (there is no other
//    notion of wire size left in the system);
//  * round-trip fuzz — randomized instances of every protocol message on
//    both stacks encode -> decode -> re-encode byte-identically;
//  * robustness — truncated / bit-flipped / garbage frames never exhibit
//    UB: they either decode or throw CodecError (run under the ASan CI job
//    like the rest of the suite).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sftbft/common/rng.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/dissem/batch.hpp"
#include "sftbft/net/sim_transport.hpp"
#include "sftbft/streamlet/streamlet.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft {
namespace {

using net::Envelope;
using net::SimTransport;
using net::WireType;

crypto::KeyRegistry& registry() {
  static crypto::KeyRegistry reg(7, 1);
  return reg;
}

types::BlockId random_id(Rng& rng) {
  types::BlockId id;
  for (auto& byte : id.bytes) byte = static_cast<std::uint8_t>(rng.next());
  return id;
}

types::Vote random_vote(Rng& rng, const types::BlockId& block_id, Round round,
                        std::optional<ReplicaId> fixed_voter = std::nullopt) {
  types::Vote vote;
  vote.block_id = block_id;
  vote.round = round;
  vote.voter =
      fixed_voter ? *fixed_voter : static_cast<ReplicaId>(rng.uniform(0, 6));
  switch (rng.uniform(0, 2)) {
    case 0:
      vote.mode = types::VoteMode::Plain;
      break;
    case 1:
      vote.mode = types::VoteMode::Marker;
      vote.marker = static_cast<Round>(rng.uniform(0, round));
      break;
    default: {
      vote.mode = types::VoteMode::Intervals;
      vote.endorsed = IntervalSet::single(1, std::max<Round>(round, 8));
      if (rng.chance(0.5)) {
        // Punch a hole so multi-interval sets round-trip too.
        vote.endorsed.subtract(3, static_cast<Round>(3 + rng.uniform(0, 3)));
      }
      break;
    }
  }
  vote.sig = registry().signer_for(vote.voter).sign(vote.signing_bytes());
  return vote;
}

types::QuorumCert random_qc(Rng& rng, const types::BlockId& block_id,
                            Round round) {
  types::QuorumCert qc;
  qc.block_id = block_id;
  qc.round = round;
  qc.parent_id = random_id(rng);
  qc.parent_round = round > 0 ? round - 1 : 0;
  // Distinct voters only — a duplicate signer is unrepresentable in the
  // aggregate (voter ids are implicit in the bitmap).
  for (ReplicaId voter = 0; voter < 7; ++voter) {
    if (rng.chance(0.6)) {
      qc.add_vote(random_vote(rng, block_id, round, voter));
    }
  }
  qc.canonicalize();
  return qc;
}

crypto::Sha256Digest random_digest(Rng& rng) {
  crypto::Sha256Digest digest;
  for (auto& byte : digest.bytes) byte = static_cast<std::uint8_t>(rng.next());
  return digest;
}

types::Block random_block(Rng& rng) {
  types::Block block;
  block.parent_id = random_id(rng);
  block.round = static_cast<Round>(rng.uniform(1, 200));
  block.height = static_cast<Height>(rng.uniform(1, 100));
  block.proposer = static_cast<ReplicaId>(rng.uniform(0, 6));
  block.qc = random_qc(rng, block.parent_id, block.round - 1);
  if (rng.chance(0.3)) {
    // Dissemination mode: the payload is a batch-digest list.
    block.payload.mode = types::Payload::Mode::kDigests;
    const int digests = static_cast<int>(rng.uniform(0, 5));
    for (int i = 0; i < digests; ++i) {
      block.payload.batch_digests.push_back(random_digest(rng));
    }
  } else {
    const int txns = static_cast<int>(rng.uniform(0, 6));
    for (int i = 0; i < txns; ++i) {
      block.payload.txns.push_back(
          {.id = rng.next(),
           .submitted_at = static_cast<SimTime>(rng.uniform(0, 1'000'000)),
           .size_bytes = static_cast<std::uint32_t>(rng.uniform(0, 600))});
    }
  }
  block.created_at = static_cast<SimTime>(rng.uniform(0, 1'000'000));
  block.seal();
  return block;
}

dissem::Batch random_batch(Rng& rng) {
  dissem::Batch batch;
  batch.creator = static_cast<ReplicaId>(rng.uniform(0, 6));
  batch.seq = rng.next() % 1000;
  const int txns = static_cast<int>(rng.uniform(0, 8));
  for (int i = 0; i < txns; ++i) {
    batch.txns.push_back(
        {.id = rng.next(),
         .submitted_at = static_cast<SimTime>(rng.uniform(0, 1'000'000)),
         .size_bytes = static_cast<std::uint32_t>(rng.uniform(0, 600))});
  }
  batch.seal();
  return batch;
}

dissem::BatchRequest random_batch_request(Rng& rng) {
  dissem::BatchRequest req;
  req.requester = static_cast<ReplicaId>(rng.uniform(0, 6));
  const int digests = 1 + static_cast<int>(rng.uniform(0, 7));
  for (int i = 0; i < digests; ++i) req.digests.push_back(random_digest(rng));
  return req;
}

dissem::BatchResponse random_batch_response(Rng& rng) {
  dissem::BatchResponse resp;
  const int batches = static_cast<int>(rng.uniform(0, 3));
  for (int i = 0; i < batches; ++i) resp.batches.push_back(random_batch(rng));
  return resp;
}

types::Proposal random_proposal(Rng& rng) {
  types::Proposal proposal;
  proposal.block = random_block(rng);
  if (rng.chance(0.5)) {
    types::TimeoutCert tc;
    tc.round = proposal.block.round - 1;
    const int msgs = 1 + static_cast<int>(rng.uniform(0, 3));
    for (int i = 0; i < msgs; ++i) {  // ascending senders (bitmap order)
      types::TimeoutMsg msg;
      msg.round = tc.round;
      msg.sender = static_cast<ReplicaId>(i);
      msg.high_qc = random_qc(rng, random_id(rng), tc.round > 0 ? tc.round - 1 : 0);
      msg.sig = registry().signer_for(msg.sender).sign(msg.signing_bytes());
      tc.add_timeout(msg);
    }
    proposal.tc = tc;
  }
  const int log = static_cast<int>(rng.uniform(0, 4));
  for (int i = 0; i < log; ++i) {
    proposal.commit_log.push_back(
        {.block_id = random_id(rng),
         .round = static_cast<Round>(rng.uniform(1, 100)),
         .strength = static_cast<std::uint32_t>(rng.uniform(1, 8))});
  }
  proposal.sig = registry()
                     .signer_for(proposal.block.proposer)
                     .sign(proposal.signing_bytes());
  return proposal;
}

types::TimeoutMsg random_timeout(Rng& rng) {
  types::TimeoutMsg msg;
  msg.round = static_cast<Round>(rng.uniform(1, 500));
  msg.sender = static_cast<ReplicaId>(rng.uniform(0, 6));
  msg.high_qc = random_qc(rng, random_id(rng), msg.round - 1);
  msg.sig = registry().signer_for(msg.sender).sign(msg.signing_bytes());
  return msg;
}

streamlet::SVote random_svote(Rng& rng) {
  streamlet::SVote vote;
  vote.block_id = random_id(rng);
  vote.round = static_cast<Round>(rng.uniform(1, 300));
  vote.height = static_cast<Height>(rng.uniform(1, 200));
  vote.voter = static_cast<ReplicaId>(rng.uniform(0, 6));
  vote.marker = static_cast<Height>(rng.uniform(0, vote.height));
  vote.sig = registry().signer_for(vote.voter).sign(vote.signing_bytes());
  return vote;
}

streamlet::SProposal random_sproposal(Rng& rng) {
  streamlet::SProposal proposal;
  proposal.block = random_block(rng);
  proposal.sig = registry()
                     .signer_for(proposal.block.proposer)
                     .sign(proposal.signing_bytes());
  return proposal;
}

streamlet::SCert random_scert(Rng& rng) {
  streamlet::SCert cert;
  cert.block_id = random_id(rng);
  cert.round = static_cast<Round>(rng.uniform(1, 300));
  cert.height = static_cast<Height>(rng.uniform(1, 200));
  for (ReplicaId voter = 0; voter < 7; ++voter) {  // ascending, distinct
    if (!rng.chance(0.6)) continue;
    streamlet::SVote vote;
    vote.block_id = cert.block_id;
    vote.round = cert.round;
    vote.height = cert.height;
    vote.voter = voter;
    vote.marker = static_cast<Height>(rng.uniform(0, vote.height));
    vote.sig = registry().signer_for(voter).sign(vote.signing_bytes());
    cert.add_vote(vote);
  }
  return cert;
}

streamlet::SSyncResponse random_ssync_response(Rng& rng) {
  streamlet::SSyncResponse resp;
  const int blocks = static_cast<int>(rng.uniform(0, 3));
  for (int i = 0; i < blocks; ++i) resp.blocks.push_back(random_block(rng));
  const int certs = static_cast<int>(rng.uniform(0, 3));
  for (int i = 0; i < certs; ++i) resp.certs.push_back(random_scert(rng));
  return resp;
}

/// Every message type of both stacks, as envelopes, freshly randomized.
std::vector<Envelope> all_message_envelopes(Rng& rng) {
  const auto sender = static_cast<ReplicaId>(rng.uniform(0, 6));
  types::SyncResponse sync_resp;
  const int blocks = 1 + static_cast<int>(rng.uniform(0, 2));
  for (int i = 0; i < blocks; ++i) sync_resp.blocks.push_back(random_block(rng));
  sync_resp.high_qc = random_qc(rng, sync_resp.blocks.back().id,
                                sync_resp.blocks.back().round);
  return {
      Envelope::pack(WireType::kProposal, sender, random_proposal(rng)),
      Envelope::pack(WireType::kVote, sender,
                     random_vote(rng, random_id(rng),
                                 static_cast<Round>(rng.uniform(1, 100)))),
      Envelope::pack(WireType::kTimeout, sender, random_timeout(rng)),
      Envelope::pack(WireType::kSyncRequest, sender,
                     types::SyncRequest{.requester = sender,
                                        .from_height = rng.next() % 1000}),
      Envelope::pack(WireType::kSyncResponse, sender, sync_resp),
      Envelope::pack(WireType::kSProposal, sender, random_sproposal(rng)),
      Envelope::pack(WireType::kSVote, sender, random_svote(rng)),
      Envelope::pack(WireType::kSSyncRequest, sender,
                     streamlet::SSyncRequest{.requester = sender,
                                             .from_height = rng.next() % 1000}),
      Envelope::pack(WireType::kSSyncResponse, sender,
                     random_ssync_response(rng)),
      Envelope::pack(WireType::kBatchPush, sender,
                     dissem::BatchPush{random_batch(rng)}),
      Envelope::pack(WireType::kBatchRequest, sender,
                     random_batch_request(rng)),
      Envelope::pack(WireType::kBatchResponse, sender,
                     random_batch_response(rng)),
  };
}

// ---------------------------------------------------------------- parity

TEST(WireParity, ChargedBytesEqualCanonicalEncodingForEveryType) {
  // The acceptance check of the refactor: for every message type on both
  // stacks, the size the transport charges (send-side stats AND the
  // receiver's frame accounting) is exactly encode().size().
  Rng rng(2024);
  sim::Scheduler sched;
  SimTransport transport(sched, net::Topology::uniform(7, millis(1)), {}, 1);

  std::vector<std::size_t> received;
  transport.set_handler(1, [&received](const Envelope&, std::size_t bytes) {
    received.push_back(bytes);
  });

  std::uint64_t expected_bytes = 0;
  std::uint64_t sent = 0;
  for (int round = 0; round < 5; ++round) {
    for (Envelope& env : all_message_envelopes(rng)) {
      const std::size_t canonical = env.encode().size();
      expected_bytes += canonical;
      ++sent;
      transport.send(1, std::move(env));
    }
  }
  sched.run_until_idle();

  EXPECT_EQ(transport.stats().total_count(), sent);
  EXPECT_EQ(transport.stats().total_bytes(), expected_bytes);
  ASSERT_EQ(received.size(), sent);
  std::uint64_t received_bytes = 0;
  for (const std::size_t bytes : received) received_bytes += bytes;
  EXPECT_EQ(received_bytes, expected_bytes);
}

TEST(WireParity, PayloadBodiesAreOnTheWire) {
  // Blocks carry their (synthetic) transaction bodies on the wire: a
  // 100x4500-byte batch makes the proposal frame ~450 KB, like the paper's.
  Rng rng(7);
  types::Proposal proposal = random_proposal(rng);
  proposal.block.payload.txns.clear();
  for (int i = 0; i < 100; ++i) {
    proposal.block.payload.txns.push_back(
        {.id = static_cast<std::uint64_t>(i), .submitted_at = 0,
         .size_bytes = 4500});
  }
  proposal.block.seal();
  const Envelope env = Envelope::pack(WireType::kProposal, 0, proposal);
  EXPECT_GE(env.encode().size(), 450'000u);
}

// ------------------------------------------------------------- round trip

TEST(WireRoundTrip, AllTypesReencodeByteIdentically) {
  Rng rng(99);
  for (int iteration = 0; iteration < 30; ++iteration) {
    for (const Envelope& env : all_message_envelopes(rng)) {
      const Bytes frame = env.encode();
      const Envelope decoded = Envelope::decode(BytesView(frame));
      EXPECT_EQ(decoded, env);
      // Re-encode the decoded *message* too: payload -> typed -> payload.
      Envelope rebuilt = decoded;
      switch (env.type) {
        case WireType::kProposal:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<types::Proposal>());
          break;
        case WireType::kVote:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<types::Vote>());
          break;
        case WireType::kTimeout:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<types::TimeoutMsg>());
          break;
        case WireType::kSyncRequest:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<types::SyncRequest>());
          break;
        case WireType::kSyncResponse:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<types::SyncResponse>());
          break;
        case WireType::kSProposal:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<streamlet::SProposal>());
          break;
        case WireType::kSVote:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<streamlet::SVote>());
          break;
        case WireType::kSSyncRequest:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<streamlet::SSyncRequest>());
          break;
        case WireType::kSSyncResponse:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<streamlet::SSyncResponse>());
          break;
        case WireType::kBatchPush:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<dissem::BatchPush>());
          break;
        case WireType::kBatchRequest:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<dissem::BatchRequest>());
          break;
        case WireType::kBatchResponse:
          rebuilt = Envelope::pack(env.type, env.sender,
                                   env.unpack<dissem::BatchResponse>());
          break;
      }
      EXPECT_EQ(rebuilt.encode(), frame);
    }
  }
}

// ------------------------------------------------------------- robustness

TEST(WireRobustness, TruncatedFramesThrowCodecError) {
  Rng rng(123);
  for (const Envelope& env : all_message_envelopes(rng)) {
    const Bytes frame = env.encode();
    // Every strict prefix must be rejected (sampled for long frames).
    const std::size_t step = std::max<std::size_t>(1, frame.size() / 64);
    for (std::size_t len = 0; len < frame.size(); len += step) {
      EXPECT_THROW(Envelope::decode(BytesView(frame.data(), len)),
                   CodecError);
    }
  }
}

TEST(WireRobustness, BitFlipsAreRejectedNeverUb) {
  Rng rng(321);
  int rejected = 0, survived = 0;
  for (int iteration = 0; iteration < 10; ++iteration) {
    for (const Envelope& env : all_message_envelopes(rng)) {
      Bytes frame = env.encode();
      const int flips = 1 + static_cast<int>(rng.uniform(0, 7));
      for (int i = 0; i < flips; ++i) {
        const auto bit = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(frame.size()) * 8 - 1));
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      try {
        (void)Envelope::decode(BytesView(frame));
        ++survived;  // astronomically unlikely (CRC collision)
      } catch (const CodecError&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(survived, 0);
}

TEST(WireRobustness, GarbageBuffersThrowCodecError) {
  Rng rng(555);
  for (int iteration = 0; iteration < 200; ++iteration) {
    Bytes garbage(static_cast<std::size_t>(rng.uniform(0, 512)));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next());
    EXPECT_THROW(Envelope::decode(BytesView(garbage)), CodecError);
  }
}

TEST(WireRobustness, GarbagePayloadsNeverUbInTypedDecoders) {
  // Bypass the CRC (a Byzantine sender can frame garbage correctly) and
  // fuzz the typed payload decoders directly: they must either produce a
  // message or throw CodecError — no crashes, no huge allocations (the
  // Decoder::count clamp), no UB for ASan to find.
  Rng rng(777);
  for (int iteration = 0; iteration < 400; ++iteration) {
    Bytes garbage(static_cast<std::size_t>(rng.uniform(0, 256)));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next());
    const Envelope env{WireType::kProposal, 0, garbage};
    const auto poke = [&](auto tag) {
      using M = decltype(tag);
      try {
        (void)env.unpack<M>();
      } catch (const CodecError&) {
        // expected for nearly all inputs
      }
    };
    poke(types::Proposal{});
    poke(types::Vote{});
    poke(types::TimeoutMsg{});
    poke(types::SyncRequest{});
    poke(types::SyncResponse{});
    poke(streamlet::SProposal{});
    poke(streamlet::SVote{});
    poke(streamlet::SSyncRequest{});
    poke(streamlet::SSyncResponse{});
    poke(dissem::BatchPush{});
    poke(dissem::BatchRequest{});
    poke(dissem::BatchResponse{});
  }
}

TEST(WireRobustness, BatchCountClampRejectsHugeCountsWithoutAllocating) {
  // A Byzantine peer can frame any payload with a valid CRC; the typed
  // decoders must reject element counts that cannot fit the remaining bytes
  // (Decoder::count) instead of reserving gigabytes.
  Encoder resp;
  resp.u32(0xFFFFFFFFu);  // "4 billion batches", then nothing
  const Envelope resp_env{WireType::kBatchResponse, 0, resp.data()};
  EXPECT_THROW((void)resp_env.unpack<dissem::BatchResponse>(), CodecError);

  Encoder req;
  req.u32(3);              // requester
  req.u32(0x10000000u);    // "268M digests" in an 8-byte payload
  const Envelope req_env{WireType::kBatchRequest, 0, req.data()};
  EXPECT_THROW((void)req_env.unpack<dissem::BatchRequest>(), CodecError);

  // Same clamp inside a digest-mode block payload.
  Encoder payload;
  payload.u8(1);           // Payload::Mode::kDigests
  payload.u32(0x0FFFFFFFu);
  Decoder dec(payload.data());
  EXPECT_THROW((void)types::Payload::decode(dec), CodecError);
}

TEST(WireRobustness, UnknownTagRejected) {
  Envelope env{WireType::kVote, 3, {1, 2, 3}};
  Bytes frame = env.encode();
  frame[0] = 0x7F;  // not a registered tag; CRC also breaks — both reject
  EXPECT_THROW(Envelope::decode(BytesView(frame)), CodecError);
}

// ------------------------------------------------- aggregate certificates

TEST(WireAggregate, QcSignatureMaterialIsConstantInN) {
  // The perf claim, pinned exactly: at n = 100 a full QC carries
  // ⌈100/8⌉ + 32 = 45 bytes of signature material (the u32 length prefix on
  // the bitmap is framing), where the per-vote scheme carried 100 × 36 B.
  crypto::KeyRegistry reg(100, 13);
  Rng rng(41);
  const types::BlockId id = random_id(rng);
  types::QuorumCert qc;
  qc.block_id = id;
  qc.round = 9;
  qc.parent_id = random_id(rng);
  qc.parent_round = 8;
  for (ReplicaId voter = 0; voter < 100; ++voter) {
    types::Vote vote;
    vote.block_id = id;
    vote.round = 9;
    vote.voter = voter;
    vote.mode = types::VoteMode::Marker;
    vote.marker = 3;
    vote.sig = reg.signer_for(voter).sign(vote.signing_bytes());
    ASSERT_TRUE(qc.add_vote(vote));
  }
  qc.canonicalize();
  EXPECT_TRUE(qc.verify(reg, 67));
  EXPECT_EQ(qc.agg.signers.bits.size(), 13u);
  EXPECT_EQ(qc.agg.signers.bits.size() + qc.agg.tag.size(), 45u);

  // And the whole QC round-trips byte-identically at that width.
  Encoder enc;
  qc.encode(enc);
  Decoder dec(enc.data());
  const types::QuorumCert decoded = types::QuorumCert::decode(dec);
  EXPECT_EQ(decoded, qc);
  Encoder again;
  decoded.encode(again);
  EXPECT_EQ(again.data(), enc.data());
}

TEST(WireAggregate, DecodeRejectsMetaCountBitmapMismatch) {
  // One meta but two bitmap bits: the cross-check must throw, not zip.
  Rng rng(42);
  Encoder enc;
  enc.raw(random_id(rng).bytes);   // block_id
  enc.u64(3);                      // round
  enc.raw(random_id(rng).bytes);   // parent_id
  enc.u64(2);                      // parent_round
  enc.u32(1);                      // one meta...
  types::VoteMeta{}.encode(enc);
  crypto::AggregateSignature agg;
  agg.signers.set(0);
  agg.signers.set(1);              // ...two signers
  agg.encode(enc);
  Decoder dec(enc.data());
  EXPECT_THROW((void)types::QuorumCert::decode(dec), CodecError);
}

TEST(WireAggregate, DecodedVotersAreImplicitAndStrictlyAscending) {
  // Voter ids never ride the wire — they are reconstructed from the bitmap,
  // so a duplicate signer is unrepresentable in any decoded certificate.
  Rng rng(43);
  for (int i = 0; i < 20; ++i) {
    const types::QuorumCert qc = random_qc(rng, random_id(rng), 5);
    Encoder enc;
    qc.encode(enc);
    Decoder dec(enc.data());
    const types::QuorumCert decoded = types::QuorumCert::decode(dec);
    for (std::size_t v = 1; v < decoded.votes.size(); ++v) {
      EXPECT_LT(decoded.votes[v - 1].voter, decoded.votes[v].voter);
    }
  }
}

TEST(WireAggregate, SubQuorumBitmapFailsVerify) {
  // Four genuine voters of seven: every byte authentic, still not a quorum.
  Rng rng(44);
  const types::BlockId id = random_id(rng);
  types::QuorumCert qc;
  qc.block_id = id;
  qc.round = 6;
  for (ReplicaId voter = 0; voter < 4; ++voter) {
    qc.add_vote(random_vote(rng, id, 6, voter));
  }
  qc.canonicalize();
  EXPECT_FALSE(qc.verify(registry(), 5));
}

TEST(WireAggregate, TimeoutCertDecodeRejectsRoundCountMismatch) {
  types::TimeoutCert tc;
  tc.round = 4;
  for (ReplicaId sender = 0; sender < 5; ++sender) {
    types::TimeoutMsg msg;
    msg.round = 4;
    msg.sender = sender;
    msg.sig = registry().signer_for(sender).sign(msg.signing_bytes());
    tc.add_timeout(msg);
  }
  tc.hqc_rounds.pop_back();  // 4 rounds vs 5 bitmap bits
  Encoder enc;
  tc.encode(enc);
  Decoder dec(enc.data());
  EXPECT_THROW((void)types::TimeoutCert::decode(dec), CodecError);
}

TEST(WireAggregate, SCertDecodeRejectsMarkerCountMismatch) {
  Rng rng(45);
  streamlet::SCert cert = random_scert(rng);
  if (cert.markers.empty()) GTEST_SKIP() << "empty cert drawn";
  cert.markers.pop_back();
  Encoder enc;
  cert.encode(enc);
  Decoder dec(enc.data());
  EXPECT_THROW((void)streamlet::SCert::decode(dec), CodecError);
}

TEST(WireAggregate, BitmapLengthClampAndCanonicalForm) {
  // Hostile length prefix beyond the clamp (n > 4096): rejected before any
  // large allocation.
  Encoder oversize;
  const Bytes big(crypto::SignerBitmap::kMaxBytes + 1, 0x01);
  oversize.bytes(BytesView(big));
  Decoder dec_oversize(oversize.data());
  EXPECT_THROW((void)crypto::SignerBitmap::decode(dec_oversize), CodecError);

  // Trailing zero byte: same signer set, different bytes — non-canonical
  // encodings are rejected so each set has exactly one wire form.
  Encoder padded;
  const Bytes trailing{0x01, 0x00};
  padded.bytes(BytesView(trailing));
  Decoder dec_padded(padded.data());
  EXPECT_THROW((void)crypto::SignerBitmap::decode(dec_padded), CodecError);

  // Boundary: exactly kMaxBytes with the top bit set decodes fine.
  Encoder maxed;
  Bytes max_bits(crypto::SignerBitmap::kMaxBytes, 0x00);
  max_bits.back() = 0x80;
  maxed.bytes(BytesView(max_bits));
  Decoder dec_maxed(maxed.data());
  EXPECT_EQ(crypto::SignerBitmap::decode(dec_maxed).popcount(), 1u);
}

TEST(WireAggregate, CertificateFuzzTruncationAndBitFlips) {
  // Certificate-focused fuzz on the raw typed decoders (the envelope fuzz
  // above exercises them only behind the CRC).
  Rng rng(4242);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const types::QuorumCert qc = random_qc(rng, random_id(rng), 7);
    Encoder enc;
    qc.encode(enc);
    const Bytes frame = enc.data();
    for (std::size_t len = 0; len < frame.size();
         len += std::max<std::size_t>(1, frame.size() / 16)) {
      try {
        Decoder dec(Bytes(frame.begin(), frame.begin() + static_cast<long>(len)));
        (void)types::QuorumCert::decode(dec);
      } catch (const CodecError&) {
        // expected for nearly every prefix
      }
    }
    Bytes flipped = frame;
    const auto bit = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(flipped.size()) * 8 - 1));
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      Decoder dec(flipped);
      const types::QuorumCert mutated = types::QuorumCert::decode(dec);
      // A flip that still parses and verifies must agree with the original
      // on everything the vote signatures cover: block_id, round, and the
      // full (voter, meta) vector plus aggregate. The parent_* header
      // fields are uncovered convenience copies (the block hash commits to
      // its parent), so flips there are the only ones allowed through.
      if (mutated.verify(registry(), 5)) {
        EXPECT_EQ(mutated.block_id, qc.block_id);
        EXPECT_EQ(mutated.round, qc.round);
        EXPECT_EQ(mutated.votes, qc.votes);
        EXPECT_EQ(mutated.agg, qc.agg);
      }
    } catch (const CodecError&) {
      // rejected — fine
    }
  }
}

}  // namespace
}  // namespace sftbft
